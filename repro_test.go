package repro_test

import (
	"math"
	"testing"

	"repro"
)

// The facade test doubles as the README quickstart: everything here uses
// only the public API.

func TestQuickstartAnalytic(t *testing.T) {
	p := repro.PaperScrubbed()
	years := repro.Years(p.LatentDominatedMTTDL())
	if math.Abs(years-6128.7)/6128.7 > 0.005 {
		t.Errorf("paper eq-10 MTTDL = %.1f years, want 6128.7", years)
	}
	loss := p.LossProbability(repro.YearsToHours(50))
	if loss <= 0 || loss >= 1 {
		t.Errorf("loss probability %v out of range", loss)
	}
	if repro.HoursPerYear != 8760 {
		t.Error("HoursPerYear must be 8760")
	}
	if got := repro.Years(repro.YearsToHours(3.5)); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("unit round trip = %v", got)
	}
}

func TestQuickstartSimulation(t *testing.T) {
	cfg, err := repro.PaperSimConfig(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := repro.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(repro.SimOptions{Trials: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	years := repro.Years(est.MTTDL.Point)
	// Physical mirror of the paper's scrubbed scenario: thousands of
	// years (the closed forms print 5-6k; the pair convention halves it).
	if years < 1000 || years > 10000 {
		t.Errorf("simulated MTTDL = %.0f years, want O(paper/2) thousands", years)
	}
}

func TestCustomSystemThroughFacade(t *testing.T) {
	scrubber, err := repro.PeriodicScrub(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.AutomatedRepair(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := repro.AlphaCorrelation(0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := repro.SimConfig{
		Replicas:    3,
		VisibleMean: 5000,
		LatentMean:  2000,
		Scrub:       scrubber,
		Repair:      rep,
		Correlation: corr,
	}
	r, err := repro.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(repro.SimOptions{Trials: 100, Seed: 2, Horizon: repro.YearsToHours(50)})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 100 {
		t.Errorf("trials = %d", est.Trials)
	}
	if est.LossProb.Point < 0 || est.LossProb.Point > 1 {
		t.Errorf("loss probability %v", est.LossProb.Point)
	}
}

func TestTopologyPresets(t *testing.T) {
	if got := repro.Colocated(3).IndependenceScore(); got != 0 {
		t.Errorf("colocated independence = %v, want 0", got)
	}
	if got := repro.FullyIndependent(3).IndependenceScore(); got != 1 {
		t.Errorf("independent independence = %v, want 1", got)
	}
	if got := repro.GeoDistributed(4).Replicas(); got != 4 {
		t.Errorf("geo replicas = %d, want 4", got)
	}
}

func TestDrivePresetsAndPlans(t *testing.T) {
	b := repro.Barracuda200()
	plan := repro.CostPlan{
		Drive:                 b,
		Replicas:              2,
		ArchiveGB:             5000,
		MissionYears:          20,
		ScrubsPerYear:         3,
		AuditCostPerPass:      0.05,
		PowerWattsPerDrive:    10,
		PowerCostPerKWh:       0.1,
		AdminCostPerDriveYear: 25,
	}
	fp, err := repro.EvaluatePlan("mirror", plan, repro.PaperCorrelated())
	if err != nil {
		t.Fatal(err)
	}
	if fp.CostPerTBYear <= 0 || fp.MTTDLYears <= 0 {
		t.Errorf("degenerate frontier point %+v", fp)
	}
}

func TestArchivePresets(t *testing.T) {
	photos := repro.PhotoService()
	if photos.MeanHoursBetweenObjectAccesses() < repro.HoursPerYear {
		t.Error("photo-service objects should wait ~a year between accesses (§4.1)")
	}
	inst := repro.InstitutionalArchive()
	if inst.TotalGB() <= 0 {
		t.Error("institutional archive should have positive size")
	}
}

func TestExperimentRegistryViaFacade(t *testing.T) {
	all := repro.Experiments()
	if len(all) != 19 {
		t.Fatalf("experiments = %d, want 19", len(all))
	}
	e, ok := repro.ExperimentByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	res, err := e.Run(repro.ExperimentConfig{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Notes) == 0 {
		t.Error("E1 produced no output through the facade")
	}
}

// scaledDiskStorageSpec derives a storage spec from a §6.1 drive with
// the time axis compressed 300x (preserving every ratio), audits every
// 200 scaled hours, and repair pinned at 2 scaled hours — the recipe
// that keeps run-to-loss trials cheap in tests and benches alike.
func scaledDiskStorageSpec(d repro.DriveSpec) repro.StorageSpec {
	s := repro.DiskStorageSpec(d, 0)
	s.VisibleMean /= 300
	s.LatentMean /= 300
	s.ScrubsPerYear = 8760.0 / 200
	s.RepairHours = 2
	return s
}

// TestMixedFleetMTTDLOrdering is the heterogeneous-fleet acceptance
// regression: a consumer+enterprise mix must land strictly between the
// pure fleets.
func TestMixedFleetMTTDLOrdering(t *testing.T) {
	consumer := scaledDiskStorageSpec(repro.Barracuda200())
	enterprise := scaledDiskStorageSpec(repro.Cheetah146())

	mttdl := func(specs ...repro.StorageSpec) float64 {
		t.Helper()
		cfg, err := repro.FleetConfig(specs...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := repro.NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(repro.SimOptions{Trials: 1200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return est.MTTDL.Point
	}
	allConsumer := mttdl(consumer, consumer, consumer)
	mixed := mttdl(consumer, consumer, enterprise)
	allEnterprise := mttdl(enterprise, enterprise, enterprise)
	if !(allConsumer < mixed && mixed < allEnterprise) {
		t.Errorf("mixed fleet MTTDL %.0f not strictly between all-consumer %.0f and all-enterprise %.0f",
			mixed, allConsumer, allEnterprise)
	}
}

func TestTraceThroughFacade(t *testing.T) {
	cfg, err := repro.PaperSimConfig(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := repro.TraceTrial(cfg, 4, repro.YearsToHours(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Error("trace empty — 200 years of a mirrored pair should at least audit")
	}
}
