// Package repro is a reproduction of Baker, Shah, Rosenthal,
// Roussopoulos, Maniatis, Giuli & Bungale, "A Fresh Look at the
// Reliability of Long-term Digital Storage" (EuroSys 2006): the analytic
// MTTDL model for replicated archival storage under visible, latent, and
// correlated faults, together with the event-driven Monte Carlo simulator
// that validates it and the experiment harness that regenerates every
// figure and numeric claim in the paper.
//
// This file is the public facade: it re-exports the stable surface of the
// internal packages. The three layers are:
//
//   - The analytic model (Params and friends): closed forms, eqs 1-12.
//   - The simulator (SimConfig, NewRunner): physical trials of a replica
//     group to first data loss, with scrubbing, repair, correlation,
//     common-cause shocks, and §6.6 side effects.
//   - The experiments (Experiments, ExperimentByID): the paper's
//     §5.4-§6.6 analyses as runnable artifacts.
//
// Quickstart:
//
//	p := repro.PaperScrubbed()            // §5.4: mirrored Cheetahs, 3 scrubs/yr
//	years := repro.Years(p.MTTDL())       // ~5100 (paper's eq-10 view: 6128.7)
//	loss := p.LossProbability(repro.YearsToHours(50))
//
//	cfg, _ := repro.PaperSimConfig(3, 0.1) // same system, physical simulation
//	r, _ := repro.NewRunner(cfg)
//	est, _ := r.Estimate(repro.SimOptions{Trials: 1000, Seed: 1})
//
// Estimation is a streaming reduce with O(batch) memory: instead of a
// fixed budget, ask for a precision target and watch the run converge —
// the run stops at the first deterministic batch boundary where the
// interval is tight enough, so the answer depends only on (config, seed,
// target, cap, batch size), never on worker count:
//
//	est, _ = r.EstimateStream(ctx, repro.SimOptions{
//		Seed:           1,
//		Horizon:        repro.YearsToHours(50),
//		TargetRelWidth: 0.05,            // stop at 5% CI half-width
//		MaxTrials:      1_000_000,
//	}, func(p repro.SimProgress) {
//		log.Printf("%d/%d trials, rel width %.3f", p.Trials, p.Budget, p.RelWidth)
//	})
//
// When loss is genuinely rare — high replication, fast repair — even a
// precision-targeted run burns its budget waiting for losses. Setting
// Bias switches the run to importance sampling: fault hazards on the
// survivors are accelerated while any replica is faulty, each trial
// carries its likelihood-ratio weight, and the Horvitz–Thompson
// weighted estimate is unbiased at a fraction of the trials (see
// BENCH_rare.json; typically >10x fewer at equal CI width). AutoBias
// lets the analytic model pick the boost; biased runs require a
// Horizon and report Estimate.Bias and Estimate.EffectiveSamples:
//
//	est, _ = r.Estimate(repro.SimOptions{
//		Seed:    1,
//		Horizon: repro.YearsToHours(10),
//		Bias:    repro.AutoBias,         // or an explicit factor >= 1
//		Trials:  5000,
//	})
//
// # Non-stationary fault processes and trace replay
//
// The fault processes are constant-rate by default, as in the paper. A
// Hazard profile makes them non-stationary: the profile multiplies both
// channels' rates over each replica's age (burn-in, wear-out), sampled
// exactly by thinning, with per-trial determinism and bit-identical
// results at any parallelism intact. BathtubHazard composes the classic
// burn-in/useful-life/wear-out curve; NormalizeHazard rescales any
// profile to mean multiplier 1 over a horizon, so profiled and constant
// fleets compare at equal mean fault rates (experiment E17 shows the
// profile alone moves the loss estimate). docs/MODEL.md specifies the
// process semantics and determinism contract in full:
//
//	bath, _ := repro.BathtubHazard(8760, 4, 43800, 8) // 1y burn-in at 4x, wear from y5 at 8x
//	cfg.Hazard, _ = repro.NormalizeHazard(bath, repro.YearsToHours(10))
//
// A Runner can also record every trial's fault/detection/repair events
// as a versioned NDJSON trace (RecordTrace) and replay a recorded
// stream back through the DES (NewReplayRunner + ReplayEstimate):
// pinned replay reproduces the recorded outcomes exactly, while policy
// replay re-decides detection and repair from the current config — the
// counterfactual "what if this fault history had hit a better-run
// fleet". See examples/trace-replay and the internal/trace schema:
//
//	tr, est, _ := r.RecordTrace(repro.SimOptions{Trials: 5000, Seed: 1, Horizon: repro.YearsToHours(30)})
//	rr, _ := repro.NewReplayRunner(cfg, tr, true) // pinned
//	same, _ := rr.ReplayEstimate(repro.SimOptions{Seed: 9})
//
// Heterogeneous fleets (§6.1–§6.2): SimConfig.Specs gives each replica
// its own fault means, audit schedule, detection channel, repair policy,
// and tier label; FleetConfig builds such a config from named storage
// specs. The scalar SimConfig fields remain the uniform shorthand — a
// scalar-only config expands into identical per-replica specs and stays
// byte-identical to its pre-Specs behavior under the same seed. The old
// ScrubPerReplica field is deprecated in favor of Specs[i].Scrub.
//
//	fleet, _ := repro.FleetConfig(        // consumer + enterprise + tape
//		repro.DiskStorageSpec(repro.Barracuda200(), 12),
//		repro.DiskStorageSpec(repro.Cheetah146(), 12),
//		repro.OfflineStorageSpec(tapeShelf, 2e6, 4e5, 1),
//	)
//	r, _ = repro.NewRunner(fleet)
//
// # The ltsimd simulation service
//
// For repeated what-if queries, cmd/ltsimd serves the estimator as a
// long-running daemon: every request is canonicalized into a
// deterministic cache key (SimFingerprint — scalar shorthand and the
// expanded Specs form of the same fleet hash identically, and worker
// count is excluded), repeat queries replay the exact bytes of the first
// answer from a bounded LRU, and cache misses run on a sharded worker
// pool with per-job timeouts and graceful drain on shutdown.
//
//	ltsimd -addr :8356 &
//	curl -s -X POST localhost:8356/estimate -d '{"alpha":0.1,"trials":2000}'
//	curl -s -X POST localhost:8356/sweep \
//	    -d '{"requests":[{"replicas":2},{"replicas":3}]}'   # NDJSON stream
//	curl -s localhost:8356/experiments                      # registry index
//	curl -s localhost:8356/stats                            # hit rate, queue
//	ltsim -server http://localhost:8356 -alpha 0.1          # CLI as client
//
// Determinism makes the cache sound: the same seed, config, and trial
// count reproduce results exactly (regardless of parallelism), so a
// cache hit is bit-identical to recomputation. Adaptive requests
// ("target_rel_width", "max_trials") stop at deterministic batch
// boundaries and cache just as well — keyed by the canonical request
// including the stopping rule, not the realized trial count — and
// "progress": true streams NDJSON progress frames ahead of the final
// result. `ltsim -json` emits the same EstimateJSON encoding the daemon
// serves, so local and remote outputs are byte-comparable. Embed the
// service in another process with NewSimService.
//
// # Persistence and clustering
//
// With -cache-dir the daemon layers a persistent content-addressed
// store (OpenDiskStore) under the memory cache: answers survive
// restarts and replay bit-identically from disk (X-Ltsimd-Cache:
// disk), with corrupt files quarantined and recomputed. cmd/ltsimr
// fronts N such daemons as one endpoint, routing each fingerprint to
// the worker that owns it on a bounded-load consistent-hash ring —
// cluster cache warmth adds up instead of diluting — and coalescing
// duplicate in-flight keys cluster-wide:
//
//	ltsimd -addr :8361 -cache-dir /var/cache/ltsimd-a &
//	ltsimd -addr :8362 -cache-dir /var/cache/ltsimd-b &
//	ltsimr -addr :8355 -worker localhost:8361 -worker localhost:8362 &
//	curl -s -X POST localhost:8355/estimate -d '{"alpha":0.1,"trials":2000}'
//	curl -s localhost:8355/stats   # cluster-wide hit rate, per-node warmth
//	ltsim -server http://localhost:8355 -retries 5 -alpha 0.1  # rides restarts
//
// A dead worker is ejected from the ring (in-flight requests retry on
// its successor; determinism makes the answer bit-identical) and
// re-admitted with its key ownership — and warm disk tier — intact
// when its health probe recovers. Embed the router with
// NewClusterRouter.
//
// # Observability
//
// Every layer is instrumented through internal/telemetry, a
// stdlib-only metrics registry: GET /metrics serves Prometheus text
// (ltsimd_http_request_seconds by route/status/cache outcome, cache
// hit/miss/eviction and occupancy, per-shard queue depth, queue-wait
// and run-duration histograms, and the simulator's sim_trials_total /
// sim_adaptive_rel_width convergence trajectory). Every response
// carries an X-Ltsimd-Request ID that matches one NDJSON slog record
// on the daemon's stderr with the request's span timeline (received →
// resolved → queued → running → encoded → served). Sim counters record
// at batch boundaries on the reducer, never in the per-trial loop, so
// telemetry leaves estimates bit-identical.
//
//	ltsimd -addr :8356 -log-level debug -debug-addr 127.0.0.1:6060 &
//	curl -s localhost:8356/metrics | grep ltsimd_cache
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=5
//
// Embedders pass their own *slog.Logger and shared registry via
// SimServiceConfig's Logger and Metrics fields;
// Service.MetricsRegistry exposes the registry behind GET /metrics.
//
// # Scenario documents
//
// A Scenario (internal/scenario) is the declarative, versioned way to
// name a whole family of simulations: a base request plus named sweep
// axes — "grid" axes expand as a cartesian product, "zip" axes advance
// together — over replicas, scrubs/year, α, horizons, trial budgets,
// and named-tier substitutions. Every frontend expands the same
// document through the same deterministic path: `ltsim -scenario
// file.json` (locally or relayed to a daemon), the daemon's POST /sweep
// with {"scenario": ...} (server-side expansion, batch-deduplicated)
// and POST /scenarios/expand (dry run), and the experiment harness.
//
//	doc, _ := repro.ParseScenario([]byte(`{
//	  "v": 1,
//	  "base": {"horizon_years": 50, "trials": 200},
//	  "grid": [{"param": "replicas", "values": [2, 3]}],
//	  "zip":  [{"param": "alpha",           "values": [1, 0.1]},
//	           {"param": "scrubs_per_year", "values": [3, 12]}]
//	}`))
//	points, _ := repro.ExpandScenario(doc) // 4 points, deterministic order
//	for _, pt := range points {
//	    cfg, opt, _ := pt.Request.Build()
//	    key, _ := pt.Fingerprint() // ≡ the equivalent hand-built request's key
//	    _, _ = cfg, opt            // simulate, or let a daemon sweep it
//	    _ = key
//	}
//
// An expanded point fingerprints identically to the equivalent
// hand-built request, so server-side and client-side expansion share
// cache entries, and equivalent points within one document collide onto
// a single scheduled run.
package repro

import (
	"io"

	"repro/internal/aging"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/costs"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/replica"
	"repro/internal/report"
	"repro/internal/router"
	"repro/internal/scenario"
	"repro/internal/scrub"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/threat"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ---- Analytic model (§5) ----

// Params is the paper's model parameter set: MV, ML, MRV, MRL, MDL, and
// the correlation factor Alpha. See eqs 1-12.
type Params = model.Params

// Regime identifies which §5.4 approximation applies to a Params value.
type Regime = model.Regime

// Lever is a §6 strategy lever for sensitivity analysis.
type Lever = model.Lever

// Sensitivity reports the MTTDL payoff of improving one lever.
type Sensitivity = model.Sensitivity

// HoursPerYear converts the model's hour timescale to years (8760).
const HoursPerYear = model.HoursPerYear

// Years converts hours to years.
func Years(hours float64) float64 { return model.Years(hours) }

// YearsToHours converts years to hours.
func YearsToHours(years float64) float64 { return model.YearsToHours(years) }

// FaultProbability is eq 1: P(fault within t) for a memoryless process.
func FaultProbability(t, mttf float64) float64 { return model.FaultProbability(t, mttf) }

// PaperNoScrub returns the §5.4 no-auditing scenario (MTTDL 32.0 years).
func PaperNoScrub() Params { return model.PaperNoScrub() }

// PaperScrubbed returns the §5.4 scenario with 3 scrubs/year (eq-10 MTTDL
// 6128.7 years).
func PaperScrubbed() Params { return model.PaperScrubbed() }

// PaperCorrelated returns the §5.4 scenario with α = 0.1 (612.9 years).
func PaperCorrelated() Params { return model.PaperCorrelated() }

// PaperNegligent returns the §5.4 rare-but-unaudited latent scenario
// (eq-11 MTTDL 159.8 years).
func PaperNegligent() Params { return model.PaperNegligent() }

// ---- Monte Carlo simulator ----

// SimConfig describes a replicated storage system for simulation.
type SimConfig = sim.Config

// ReplicaSpec describes one replica of a heterogeneous fleet: its own
// fault means, audit schedule, detection channel, repair policy, and
// site/tier label. Zero/nil fields inherit the SimConfig scalars.
type ReplicaSpec = sim.ReplicaSpec

// SimOptions controls a Monte Carlo estimation run. TargetRelWidth and
// MaxTrials switch it to adaptive (precision-targeted) mode; BatchSize
// sets the streaming reduce's merge granularity; Bias enables
// importance-sampled failure biasing for rare-event runs.
type SimOptions = sim.Options

// AutoBias, as SimOptions.Bias, asks the analytic model to choose the
// failure-biasing factor from the configuration and horizon.
const AutoBias = sim.AutoBias

// SimProgress is a point-in-time snapshot of a streaming estimation run,
// delivered to Runner.EstimateStream's sink at batch boundaries.
type SimProgress = sim.Progress

// Estimate is the aggregated outcome of a Monte Carlo run.
type Estimate = sim.Estimate

// TrialResult is one trial's outcome.
type TrialResult = sim.TrialResult

// Trace is a fully-evented single trial (Figure 1 material).
type Trace = sim.Trace

// Runner executes Monte Carlo estimations.
type Runner = sim.Runner

// NewRunner validates a configuration and returns a Runner.
func NewRunner(cfg SimConfig) (*Runner, error) { return sim.NewRunner(cfg) }

// TraceTrial runs one fully-traced trial.
func TraceTrial(cfg SimConfig, seed uint64, horizon float64) (*Trace, error) {
	return sim.TraceTrial(cfg, seed, horizon)
}

// PaperSimConfig returns the simulator configuration for the §5.4 worked
// scenario with the given audits per year (0 = never) and correlation α.
func PaperSimConfig(scrubsPerYear, alpha float64) (SimConfig, error) {
	return sim.PaperConfig(scrubsPerYear, alpha)
}

// ---- Strategies and substrates ----

// ScrubStrategy schedules replica audits (§6.2).
type ScrubStrategy = scrub.Strategy

// PeriodicScrub returns a periodic audit schedule with n audits/year,
// staggered by offset hours.
func PeriodicScrub(perYear, offset float64) (scrub.Periodic, error) {
	return scrub.NewPeriodic(perYear, offset)
}

// PoissonScrub returns a random audit schedule averaging n audits/year.
func PoissonScrub(perYear float64) (scrub.Poisson, error) { return scrub.NewPoisson(perYear) }

// OnAccessDetection returns the §4.1 user-access detection channel.
func OnAccessDetection(ratePerHour, coverage float64) (scrub.OnAccess, error) {
	return scrub.NewOnAccess(ratePerHour, coverage)
}

// NoScrub never audits.
func NoScrub() scrub.Strategy { return scrub.None{} }

// RepairPolicy describes fault recovery (§6.3).
type RepairPolicy = repair.Policy

// AutomatedRepair returns a hot-spare policy with fixed repair times and
// an optional §6.6 bug probability.
func AutomatedRepair(mrv, mrl, bugProb float64) (RepairPolicy, error) {
	return repair.Automated(mrv, mrl, bugProb)
}

// OperatorRepair returns a human-in-the-loop policy: lognormal dispatch
// delay plus exponential repairs.
func OperatorRepair(dispatchMean, dispatchCV, mrv, mrl float64) (RepairPolicy, error) {
	return repair.OperatorAssisted(dispatchMean, dispatchCV, mrv, mrl)
}

// Correlation models inter-replica fault acceleration (§5.3).
type Correlation = faults.Correlation

// IndependentReplicas returns the α = 1 correlation model.
func IndependentReplicas() Correlation { return faults.Independent{} }

// AlphaCorrelation returns the paper's multiplicative-α correlation.
func AlphaCorrelation(alpha float64) (Correlation, error) {
	return faults.NewAlphaCorrelation(alpha)
}

// Shock is a common-cause fault source hitting several replicas at once.
type Shock = faults.Shock

// ---- Non-stationary hazard profiles ----

// Hazard is a time-varying multiplier on a replica's fault rates: set
// SimConfig.Hazard (or ReplicaSpec.Hazard) to make the fault processes
// non-stationary. See docs/MODEL.md for the sampling and determinism
// contract.
type Hazard = faults.Hazard

// ConstantHazard scales both fault channels by a fixed factor.
type ConstantHazard = faults.ConstantHazard

// WeibullHazard is the Weibull (power-law) hazard shape with shape >= 1
// — the standard wear-out model.
type WeibullHazard = faults.WeibullHazard

// PiecewiseHazard is a step-function profile: constant factors over
// consecutive age bands.
type PiecewiseHazard = faults.PiecewiseHazard

// NewConstantHazard validates and returns a constant profile.
func NewConstantHazard(factor float64) (ConstantHazard, error) {
	return faults.NewConstantHazard(factor)
}

// NewWeibullHazard validates and returns a Weibull profile.
func NewWeibullHazard(shape, scaleHours float64) (WeibullHazard, error) {
	return faults.NewWeibullHazard(shape, scaleHours)
}

// NewPiecewiseHazard validates and returns a step-function profile.
func NewPiecewiseHazard(boundsHours, factors []float64) (PiecewiseHazard, error) {
	return faults.NewPiecewiseHazard(boundsHours, factors)
}

// BathtubHazard composes the classic bathtub curve as a piecewise
// profile: elevated burn-in, unit useful life, elevated wear-out.
func BathtubHazard(burnInHours, burnInFactor, wearOnsetHours, wearFactor float64) (PiecewiseHazard, error) {
	return aging.Bathtub(burnInHours, burnInFactor, wearOnsetHours, wearFactor)
}

// WearoutHazard is a pure wear-out (Weibull) profile parameterized by
// characteristic life.
func WearoutHazard(shape, characteristicLifeHours float64) (WeibullHazard, error) {
	return aging.Wearout(shape, characteristicLifeHours)
}

// NormalizeHazard rescales a profile so its mean multiplier over the
// horizon is exactly 1 — profiled and constant fleets then carry equal
// mean fault rates, isolating the effect of the time profile itself.
func NormalizeHazard(h Hazard, horizonHours float64) (faults.ScaledHazard, error) {
	return faults.Normalize(h, horizonHours)
}

// ---- Fault traces (record and replay) ----

// FaultTrace is a recorded fault/repair/access event stream over a
// trial set, serializable as versioned NDJSON (see internal/trace for
// the schema and examples/trace-replay for a worked example). Distinct
// from Trace, the single-trial diagnostic event log.
type FaultTrace = trace.Trace

// FaultTraceHeader is a trace's header line: schema version, fleet
// width, trial count, and censoring horizon.
type FaultTraceHeader = trace.Header

// FaultTraceEvent is one recorded event.
type FaultTraceEvent = trace.Event

// ParseFaultTrace decodes and validates an NDJSON trace stream.
func ParseFaultTrace(r io.Reader) (*FaultTrace, error) { return trace.Parse(r) }

// NewReplayRunner returns a Runner that replays the recorded trace
// through cfg's fleet instead of sampling fresh faults. With pinRepairs
// true the recorded repair completions are honored (a replay reproduces
// the recorded outcomes exactly); false re-decides detection and repair
// from cfg — the counterfactual replay. Use Runner.ReplayEstimate to
// run it; Runner.RecordTrace on an ordinary runner produces traces.
func NewReplayRunner(cfg SimConfig, tr *FaultTrace, pinRepairs bool) (*Runner, error) {
	return sim.NewReplayRunner(cfg, tr, pinRepairs)
}

// FaultClass distinguishes visible from latent faults (§5.1).
type FaultClass = faults.Type

// The two fault classes.
const (
	FaultVisible = faults.Visible
	FaultLatent  = faults.Latent
)

// Topology places replicas along the §6.5 independence dimensions.
type Topology = replica.Topology

// Dimension names one §6.5 independence axis.
type Dimension = replica.Dimension

// The §6.5 independence dimensions.
const (
	Geography      = replica.Geography
	Administration = replica.Administration
	HardwareBatch  = replica.HardwareBatch
	Software       = replica.Software
	Organization   = replica.Organization
)

// ShockRates configures per-dimension shared-component failure behaviour
// for Topology.CompileShocks.
type ShockRates = replica.ShockRates

// ShockSpec is one dimension's failure behaviour.
type ShockSpec = replica.ShockSpec

// Colocated places r replicas in one machine room sharing every §6.5
// dimension — the cautionary baseline.
func Colocated(r int) Topology { return replica.Colocated(r) }

// GeoDistributed places r replicas in distinct locations but under one
// administration, procurement, software stack, and organization.
func GeoDistributed(r int) Topology { return replica.GeoDistributed(r) }

// FullyIndependent places r replicas differing on every §6.5 dimension —
// the British Library posture.
func FullyIndependent(r int) Topology { return replica.FullyIndependent(r) }

// ---- Storage economics (§6.1-§6.2, §4.3) ----

// DriveSpec is a disk datasheet (§6.1).
type DriveSpec = storage.DriveSpec

// Barracuda200 and Cheetah146 are the paper's §6.1 drives.
func Barracuda200() DriveSpec { return storage.Barracuda200() }
func Cheetah146() DriveSpec   { return storage.Cheetah146() }

// Media describes one replica's storage medium for audit and repair
// economics (§6.2–§6.4).
type Media = storage.Media

// TapeShelf returns an offline tape medium with §6.2's cost structure.
func TapeShelf(capacityGB, readMBps, retrieveHours, handlingProb, wearProb, costPerCycle float64) Media {
	return storage.TapeShelf(capacityGB, readMBps, retrieveHours, handlingProb, wearProb, costPerCycle)
}

// StorageSpec names one replica's storage substrate (drive or medium
// plus audit/repair numbers), ready to bridge into a ReplicaSpec.
type StorageSpec = storage.Spec

// DiskStorageSpec derives a StorageSpec from a §6.1 drive datasheet.
func DiskStorageSpec(d DriveSpec, scrubsPerYear float64) StorageSpec {
	return storage.DiskSpec(d, scrubsPerYear)
}

// OfflineStorageSpec derives a StorageSpec from an offline medium; the
// caller supplies the fault means the datasheet cannot predict.
func OfflineStorageSpec(m Media, visibleMean, latentMean, auditsPerYear float64) StorageSpec {
	return storage.OfflineSpec(m, visibleMean, latentMean, auditsPerYear)
}

// FleetConfig assembles a heterogeneous-fleet SimConfig from named
// storage specs: one replica per spec, independent replicas by default.
func FleetConfig(specs ...StorageSpec) (SimConfig, error) {
	return storage.FleetConfig(specs...)
}

// StorageTierSpec resolves a named storage tier ("consumer",
// "enterprise", "tape") into a StorageSpec at the given audit frequency
// — the shared vocabulary behind `ltsim -replica consumer` and the
// daemon's {"tier": "consumer"} fleet entries.
func StorageTierSpec(name string, scrubsPerYear float64) (StorageSpec, bool) {
	return storage.TierSpec(name, scrubsPerYear)
}

// ---- Simulation service (cmd/ltsimd) ----

// SimCanonical serializes a validated SimConfig + SimOptions pair into
// its deterministic canonical string: scalar shorthand and the expanded
// Specs form of the same fleet serialize identically, and fields that do
// not shape results (worker count) are excluded.
func SimCanonical(cfg SimConfig, opt SimOptions) (string, error) {
	return sim.Canonical(cfg, opt)
}

// SimFingerprint returns the hex SHA-256 of SimCanonical — the
// content-addressed cache key the ltsimd daemon uses.
func SimFingerprint(cfg SimConfig, opt SimOptions) (string, error) {
	return sim.Fingerprint(cfg, opt)
}

// SimService is the embeddable simulation service behind cmd/ltsimd:
// canonical request hashing, a bounded content-addressed result cache,
// and a sharded worker-pool scheduler, exposed over HTTP.
type SimService = service.Service

// SimServiceConfig sizes a SimService.
type SimServiceConfig = service.Config

// NewSimService returns a started service; serve its Handler and stop it
// with Shutdown.
func NewSimService(cfg SimServiceConfig) *SimService { return service.New(cfg) }

// ServiceEstimateRequest is one estimation query on the daemon's wire:
// the uniform-fleet shorthand or an explicit fleet, plus Monte Carlo
// options, with the same defaults as cmd/ltsim's flags.
type ServiceEstimateRequest = service.EstimateRequest

// ServiceFleetEntry is one replica of a fleet on the wire: a named tier
// or explicit StorageSpec numbers.
type ServiceFleetEntry = service.FleetEntry

// ServiceHazardSpec is a non-stationary fault profile on the wire: a
// named kind (constant, weibull, bathtub, piecewise) plus that kind's
// parameters, with optional mean-rate normalization. Set it on a
// request ("hazard") or a fleet entry, or sweep its fields through
// scenario hazard.* axes.
type ServiceHazardSpec = service.HazardSpec

// ---- Persistent result store (internal/store) ----

// ResultStore is the persistent result tier a SimService layers under
// its in-memory cache (SimServiceConfig.Store): Get/Put by fingerprint,
// whole-value, crash-safe.
type ResultStore = store.Store

// DiskResultStore is the disk-backed ResultStore behind ltsimd's
// -cache-dir: one CRC-framed file per fingerprint, atomic writes, a
// startup scan, LRU-by-mtime GC over a byte budget, and quarantine of
// corrupt entries. A restarted service replays bit-identical bytes for
// everything it ever answered.
type DiskResultStore = store.DiskStore

// ResultStoreStats is a ResultStore counter snapshot (the "store"
// section of the daemon's /stats).
type ResultStoreStats = store.Stats

// OpenDiskStore opens (creating if needed) a disk store rooted at dir,
// GC-bounded to maxBytes of entry files (0 = unbounded).
func OpenDiskStore(dir string, maxBytes int64) (*DiskResultStore, error) {
	return store.OpenDisk(dir, maxBytes)
}

// ---- Cluster router (internal/router, cmd/ltsimr) ----

// ClusterRouter is the stateless front of an ltsimd cluster (the
// embeddable service behind cmd/ltsimr): it consistent-hashes request
// fingerprints across workers on a bounded-load ring, coalesces
// duplicate in-flight keys cluster-wide, fans scenario sweeps out with
// per-point node attribution, and survives worker death by ejection +
// successor retry with probe-driven re-admission.
type ClusterRouter = router.Router

// ClusterRouterConfig sizes a ClusterRouter; Workers is the only
// required field.
type ClusterRouterConfig = router.Config

// ClusterWorker names one ltsimd worker by base URL.
type ClusterWorker = router.Worker

// NewClusterRouter returns a started router (health prober running);
// serve its Handler and stop it with Close.
func NewClusterRouter(cfg ClusterRouterConfig) (*ClusterRouter, error) {
	return router.New(cfg)
}

// ---- Scenario documents (internal/scenario) ----

// Scenario is a versioned declarative scenario document: a base
// request plus named grid (cartesian) and zip (paired) sweep axes. See
// the package comment's "Scenario documents" section and the
// internal/scenario package comment for the full v1 schema.
type Scenario = scenario.Document

// ScenarioAxis sweeps one named parameter of a Scenario (by "values",
// or by "tiers" for named-tier substitution into the base fleet).
type ScenarioAxis = scenario.Axis

// ScenarioPoint is one expanded point: its deterministic expansion
// index, the axis coordinates that produced it, and the fully-applied
// request.
type ScenarioPoint = scenario.Point

// ScenarioCoord records one axis coordinate of an expanded point.
type ScenarioCoord = scenario.Coord

// ScenarioVersion is the scenario schema version this build speaks.
const ScenarioVersion = scenario.Version

// ParseScenario decodes and validates a scenario document, rejecting
// unknown fields.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// ExpandScenario materializes every point of a scenario document in
// its deterministic expansion order (grid odometer, first axis slowest,
// zip tuple innermost). Each point fingerprints identically to the
// equivalent hand-built request.
func ExpandScenario(doc Scenario) ([]ScenarioPoint, error) { return scenario.Expand(doc) }

// EstimateJSON is the canonical machine-readable encoding of an
// Estimate, shared by `ltsim -json` and the daemon (so their outputs are
// byte-comparable).
type EstimateJSON = report.EstimateJSON

// NewEstimateJSON converts an estimate to its wire encoding.
func NewEstimateJSON(est Estimate, horizonHours float64) EstimateJSON {
	return report.NewEstimateJSON(est, horizonHours)
}

// CostPlan describes a preservation system for costing.
type CostPlan = costs.Plan

// CostBreakdown is a mission-total cost by category.
type CostBreakdown = costs.Breakdown

// FrontierPoint pairs a plan's cost with its modeled reliability.
type FrontierPoint = costs.FrontierPoint

// EvaluatePlan combines a plan with model parameters into a frontier
// point.
func EvaluatePlan(label string, p CostPlan, params Params) (FrontierPoint, error) {
	return costs.Evaluate(label, p, params)
}

// Archive describes an archival collection's size and traffic (§2).
type Archive = workload.Archive

// PhotoService returns the §2 consumer-photo-scale archive preset.
func PhotoService() Archive { return workload.PhotoService() }

// InstitutionalArchive returns a library-scale archive preset.
func InstitutionalArchive() Archive { return workload.InstitutionalArchive() }

// ---- High-level assessment (internal/core) ----

// System describes one candidate preservation deployment for one-call
// assessment: drives, placement, audit schedule, economics.
type System = core.System

// SystemEconomics carries the §4.3 cost streams for a System.
type SystemEconomics = core.Economics

// Assessment is everything the library can say about a System.
type Assessment = core.Assessment

// AssessOptions scales the Monte Carlo side of an assessment.
type AssessOptions = core.AssessOptions

// CompareSystems assesses several systems under the same options.
func CompareSystems(systems []System, opt AssessOptions) ([]*Assessment, error) {
	return core.Compare(systems, opt)
}

// Threat is one §3 threat category.
type Threat = threat.Threat

// ThreatCatalogue returns the §3 threats in the paper's order.
func ThreatCatalogue() []Threat { return threat.All() }

// ---- Baselines (§7 comparators) ----

// PattersonRAID is the 1988 RAID MTTDL model.
type PattersonRAID = baseline.PattersonRAID

// ChenRAID is the 1994 extension with crashes and rebuild bit errors.
type ChenRAID = baseline.ChenRAID

// MarkovErasure is the m-of-n birth-death model behind the Weatherspoon
// erasure-vs-replication comparison.
type MarkovErasure = baseline.MarkovErasure

// ---- Experiments ----

// Experiment is one registered reproduction target (DESIGN.md §3).
type Experiment = experiments.Experiment

// ExperimentResult is a rendered experiment outcome.
type ExperimentResult = experiments.Result

// ExperimentConfig scales an experiment run.
type ExperimentConfig = experiments.RunConfig

// Experiments returns every registered experiment in DESIGN.md order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment (e.g. "E2").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
