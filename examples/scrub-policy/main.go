// Scrub policy: pick an audit frequency for an institutional archive by
// sweeping the model (§6.2) and then validating the chosen policy with
// the Monte Carlo simulator, including the §6.6 wear side effect that
// makes "scrub constantly" the wrong answer.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// An institutional archive on consumer drives: §5.4 fault scales,
	// automated repair at full-scan speed.
	drive := repro.Barracuda200()
	base := repro.Params{
		MV:    drive.MTTFHours(),
		ML:    drive.MTTFHours() / 5, // Schwarz ratio
		MRV:   drive.FullScanHours(),
		MRL:   drive.FullScanHours(),
		Alpha: 0.1,
	}

	fmt.Println("== Analytic sweep: audit frequency vs reliability ==")
	fmt.Printf("%14s %12s %16s %14s\n", "audits/year", "MDL (h)", "MTTDL (years)", "P(loss, 50y)")
	mission := repro.YearsToHours(50)
	bestPerYear, bestGainPerAudit := 0.0, 0.0
	prevMTTDL := base.WithScrubsPerYear(0).MTTDL()
	prevRate := 0.0
	for _, perYear := range []float64{0.5, 1, 2, 3, 6, 12, 26, 52, 104} {
		p := base.WithScrubsPerYear(perYear)
		mttdl := p.MTTDL()
		fmt.Printf("%14g %12.0f %16.0f %13.2g%%\n",
			perYear, p.MDL, repro.Years(mttdl), 100*repro.FaultProbability(mission, mttdl))
		// Marginal value: extra MTTDL years per extra audit/year.
		gain := (repro.Years(mttdl) - repro.Years(prevMTTDL)) / (perYear - prevRate)
		if gain > bestGainPerAudit {
			bestGainPerAudit = gain
			bestPerYear = perYear
		}
		prevMTTDL = mttdl
		prevRate = perYear
	}
	fmt.Printf("\nsteepest marginal payoff at ~%g audits/year; beyond the repair floor (MRL=%.2f h) more auditing stops helping\n\n",
		bestPerYear, base.MRL)

	fmt.Println("== Monte Carlo check with 0.5% per-pass audit wear (§6.6) ==")
	fmt.Printf("%14s %18s %22s\n", "audits/year", "MTTDL clean (y)", "MTTDL with wear (y)")
	// Scaled fault means keep the wear-bearing simulation affordable;
	// ratios carry the conclusion.
	const scale = 20
	for _, perYear := range []float64{2, 12, 52, 104, 365} {
		scrubber, err := repro.PeriodicScrub(perYear, 0)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := repro.AutomatedRepair(base.MRV, base.MRL, 0)
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.SimConfig{
			Replicas:    2,
			VisibleMean: base.MV / scale,
			LatentMean:  base.ML / scale,
			Scrub:       scrubber,
			Repair:      rep,
			Correlation: repro.IndependentReplicas(),
		}
		clean := mustEstimate(cfg, 200)
		cfg.AuditLatentFaultProb = 0.005
		worn := mustEstimate(cfg, 200)
		fmt.Printf("%14g %18.0f %22.0f\n", perYear,
			repro.Years(clean.MTTDL.Point)*scale, repro.Years(worn.MTTDL.Point)*scale)
	}
	fmt.Println("\nwith wear, reliability peaks at a finite audit rate — §6.6's tradeoff, quantified")
}

func mustEstimate(cfg repro.SimConfig, trials int) repro.Estimate {
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	est, err := runner.Estimate(repro.SimOptions{Trials: trials, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	return est
}
