// Quickstart: evaluate the paper's §5.4 worked scenarios through the
// analytic model, then check one of them against the physical Monte Carlo
// simulator — the two core capabilities of the library in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	mission := repro.YearsToHours(50)

	fmt.Println("== Baker et al. §5.4 worked scenarios (analytic model) ==")
	fmt.Println()
	scenarios := []struct {
		name  string
		p     repro.Params
		eval  func(repro.Params) float64 // the paper's own procedure
		paper float64
	}{
		{"no scrubbing", repro.PaperNoScrub(), repro.Params.MTTDL, 32.0},
		{"scrub 3x/year", repro.PaperScrubbed(), repro.Params.LatentDominatedMTTDL, 6128.7},
		{"scrubbed, alpha=0.1", repro.PaperCorrelated(), repro.Params.LatentDominatedMTTDL, 612.9},
		{"negligent latent handling", repro.PaperNegligent(), repro.Params.LongLatentWOVMTTDL, 159.8},
	}
	for _, s := range scenarios {
		mttdl := s.eval(s.p)
		fmt.Printf("%-28s MTTDL %8.1f years (paper: %7.1f)   P(loss in 50y) = %5.1f%%\n",
			s.name, repro.Years(mttdl), s.paper,
			100*repro.FaultProbability(mission, mttdl))
	}

	fmt.Println()
	fmt.Println("== The same scrubbed mirror, physically simulated ==")
	fmt.Println()
	cfg, err := repro.PaperSimConfig(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	est, err := runner.Estimate(repro.SimOptions{Trials: 400, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated MTTDL: %.0f years (95%% CI %.0f-%.0f) over %d run-to-loss trials\n",
		repro.Years(est.MTTDL.Point), repro.Years(est.MTTDL.Lo), repro.Years(est.MTTDL.Hi), est.Trials)
	fmt.Printf("analytic eq 7 for the pair convention: %.0f years\n",
		repro.Years(cfg.ModelParams().MTTDL()/2))
	fmt.Println()

	fmt.Println("== What should you invest in next? (§6 strategy ranking) ==")
	fmt.Println()
	for _, s := range repro.PaperCorrelated().Sensitivities(2) {
		fmt.Printf("improve %-6s 2x  ->  MTTDL x%.2f\n", s.Lever, s.Gain)
	}
}
