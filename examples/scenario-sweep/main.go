// Scenario sweep: the paper's replication-vs-correlation question
// (§5.5) written as one declarative scenario document instead of a
// hand-rolled loop. The grid axis sweeps the replica count; the zip
// block pairs correlation α with an audit schedule ("the more the fleet
// correlates, the harder we scrub"). The same scenario.json runs
// unchanged through every frontend:
//
//	go run ./examples/scenario-sweep                       # this program
//	ltsim -scenario examples/scenario-sweep/scenario.json  # CLI, local
//	ltsim -scenario ... -server http://localhost:8356      # daemon, server-side expansion
//	curl -X POST localhost:8356/scenarios/expand -d @scenario.json   # dry run
package main

import (
	_ "embed"
	"fmt"
	"log"

	"repro"
)

//go:embed scenario.json
var doc []byte

func main() {
	sc, err := repro.ParseScenario(doc)
	if err != nil {
		log.Fatal(err)
	}
	points, err := repro.ExpandScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q expands to %d points\n\n", sc.Name, len(points))
	fmt.Printf("%-6s %-8s %-6s %-10s %14s %16s\n",
		"point", "replicas", "alpha", "scrubs/yr", "MTTDL (years)", "P(loss in 50y)")

	for _, pt := range points {
		cfg, opt, err := pt.Request.Build()
		if err != nil {
			log.Fatal(err)
		}
		runner, err := repro.NewRunner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		est, err := runner.Estimate(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-8d %-6v %-10v %14.0f %15.1f%%\n",
			pt.Index, pt.Request.Replicas, pt.Request.Alpha, *pt.Request.ScrubsPerYear,
			repro.Years(est.MTTDL.Point), 100*est.LossProb.Point)
	}

	fmt.Println()
	fmt.Println("every point content-addresses exactly like the equivalent hand-built")
	fmt.Println("request, so a daemon sweeping this document caches each cell once:")
	key, err := points[0].Fingerprint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  point 0 fingerprint: %s\n", key)
}
