// Independence: the §5.5/§6.5 argument as a planning exercise. Three ways
// to place three replicas — one machine room, three cities under one ops
// team, and the full British-Library posture — face identical per-replica
// threat rates; only the sharing differs. Simulated MTTDL shows why
// "replication without increasing independence does not help much".
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Shared-component failure behaviour per independence dimension:
	// regional disasters are rare and visible; admin mistakes are common
	// and latent; software epidemics sit in between (§3, §4.2).
	rates := repro.ShockRates{
		repro.Geography:      {Mean: 40000, Kind: repro.FaultVisible, HitProb: 1},
		repro.Administration: {Mean: 10000, Kind: repro.FaultLatent, HitProb: 0.9},
		repro.Software:       {Mean: 25000, Kind: repro.FaultLatent, HitProb: 1},
	}

	topologies := []struct {
		label string
		top   repro.Topology
	}{
		{"one machine room (colocated)", repro.Colocated(3)},
		{"three cities, one ops team", repro.GeoDistributed(3)},
		{"fully independent (BL posture)", repro.FullyIndependent(3)},
	}

	scrubber, err := repro.PeriodicScrub(8760.0/1000, 0) // every 1000 h
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repro.AutomatedRepair(24, 24, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s %14s %16s %20s\n", "placement", "independence", "MTTDL (years)", "P(loss in 50y)")
	for _, tc := range topologies {
		shocks, err := tc.top.CompileShocks(rates)
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.SimConfig{
			Replicas:    3,
			VisibleMean: 50000, // per-replica media faults underneath
			LatentMean:  50000,
			Scrub:       scrubber,
			Repair:      rep,
			Correlation: repro.IndependentReplicas(), // correlation enters via shocks
			Shocks:      shocks,
		}
		runner, err := repro.NewRunner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		est, err := runner.Estimate(repro.SimOptions{Trials: 400, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		years := repro.Years(est.MTTDL.Point)
		fmt.Printf("%-34s %14.2f %16.1f %19.1f%%\n",
			tc.label, tc.top.IndependenceScore(), years,
			100*repro.FaultProbability(repro.YearsToHours(50), est.MTTDL.Point))
	}

	fmt.Println()
	fmt.Println("every replica sees the same marginal hazard in all three rows;")
	fmt.Println("the spread is pure correlation — the paper's α, made mechanical (§4.2, §6.5)")
}
