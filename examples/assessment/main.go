// Assessment: the one-call decision-support API. Describe three candidate
// deployments for a university archive — a single machine room, an
// offsite mirror under one ops team, and a fully independent triple — and
// get the complete §5-§6 verdict for each: reliability (analytic and
// simulated), mission cost, exposed threats, and where to invest next.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	econ := repro.SystemEconomics{
		AuditCostPerPass:      0.05,
		PowerWattsPerDrive:    10,
		PowerCostPerKWh:       0.12,
		AdminCostPerDriveYear: 25,
	}
	// Shared-component failure rates per §3 threat: one regional
	// disaster per shared site per ~75 years, one destructive admin
	// error per shared ops team per ~8 years.
	threats := map[repro.Threat]float64{
		repro.ThreatCatalogue()[0]: 75 * repro.HoursPerYear, // large-scale disaster
		repro.ThreatCatalogue()[1]: 8 * repro.HoursPerYear,  // human error
	}
	colo := repro.Colocated(2)
	geo := repro.GeoDistributed(2)
	indep := repro.FullyIndependent(3)
	systems := []repro.System{
		{
			Name: "mirror, one machine room", Drive: repro.Barracuda200(),
			Replicas: 2, Topology: &colo, ThreatMeans: threats, ScrubsPerYear: 3,
			ArchiveGB: 20000, MissionYears: 25, Economics: econ,
		},
		{
			Name: "mirror, offsite, one ops team", Drive: repro.Barracuda200(),
			Replicas: 2, Topology: &geo, ThreatMeans: threats, ScrubsPerYear: 3,
			ArchiveGB: 20000, MissionYears: 25, Economics: econ,
		},
		{
			Name: "independent triple", Drive: repro.Barracuda200(),
			Replicas: 3, Topology: &indep, ThreatMeans: threats, ScrubsPerYear: 3,
			ArchiveGB: 20000, MissionYears: 25, Economics: econ,
		},
	}

	out, err := repro.CompareSystems(systems, repro.AssessOptions{Trials: 300, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-32s %12s %16s %16s %10s\n",
		"system", "$/TB-year", "analytic MTTDL", "sim loss (25y)", "threats")
	for _, a := range out {
		analytic := fmt.Sprintf("%.0f y", a.AnalyticMTTDLYears)
		if math.IsNaN(a.AnalyticMTTDLYears) {
			analytic = "n/a"
		}
		fmt.Printf("%-32s %12.0f %16s %15.2g%% %10d\n",
			a.System.Name, a.CostPerTBYear, analytic,
			100*a.SimMissionLoss.Point, len(a.ExposedThreats))
	}

	fmt.Println()
	last := out[len(out)-1]
	fmt.Printf("threats still correlated for %q:\n", out[0].System.Name)
	for _, th := range out[0].ExposedThreats {
		info := th.Info()
		fmt.Printf("  - %-24s -> %s\n", info.Name, info.Mitigation)
	}
	fmt.Println()
	fmt.Printf("top levers for %q (improve 2x):\n", last.System.Name)
	for i, s := range last.Advice {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. %-6s MTTDL x%.2f\n", i+1, s.Lever, s.Gain)
	}
}
