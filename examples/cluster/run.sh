#!/usr/bin/env bash
# Boot a 2-worker ltsimd cluster behind the ltsimr router, prove the
# cluster-level cache properties, and tear everything down:
#
#   1. cold scenario sweep through the router (expanded once, fanned
#      across both workers, every line node-attributed),
#   2. warm repeat — cluster-wide cache hits, byte-identical lines,
#   3. kill one worker mid-sweep — the router ejects it and completes
#      the sweep on the survivor,
#   4. restart the dead worker over its cache dir — the health probe
#      re-admits it, and its disk tier still holds its shard's answers.
#
# Run from the repository root:
#
#   ./examples/cluster/run.sh
set -euo pipefail

WORK=$(mktemp -d)
trap 'kill $(jobs -pr) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

echo "== building =="
go build -o "$WORK/ltsimd" ./cmd/ltsimd
go build -o "$WORK/ltsimr" ./cmd/ltsimr

echo "== starting 2 workers + router =="
"$WORK/ltsimd" -addr 127.0.0.1:8361 -cache-dir "$WORK/cache-a" -log-level warn &
W1=$!
"$WORK/ltsimd" -addr 127.0.0.1:8362 -cache-dir "$WORK/cache-b" -log-level warn &
"$WORK/ltsimr" -addr 127.0.0.1:8355 -probe 300ms -log-level warn \
  -worker 127.0.0.1:8361 -worker 127.0.0.1:8362 &
for i in $(seq 1 50); do
  curl -sf 127.0.0.1:8355/healthz >/dev/null && break
  sleep 0.2
done
curl -s 127.0.0.1:8355/healthz | python3 -m json.tool

echo "== cold sweep through the router (node-attributed) =="
printf '{"scenario":%s}' "$(cat examples/scenario-sweep/scenario.json)" > "$WORK/doc.json"
curl -sf -X POST 127.0.0.1:8355/sweep -d @"$WORK/doc.json" | tee "$WORK/cold.ndjson" | tail -n 1

echo "== warm sweep: cluster-wide cache hits, identical bytes =="
curl -sf -X POST 127.0.0.1:8355/sweep -d @"$WORK/doc.json" | tee "$WORK/warm.ndjson" | tail -n 1
grep -v '"summary"' "$WORK/cold.ndjson" | sort > "$WORK/cold.sorted"
grep -v '"summary"' "$WORK/warm.ndjson" | sort > "$WORK/warm.sorted"
cmp "$WORK/cold.sorted" "$WORK/warm.sorted" && echo "warm lines byte-identical to cold"

echo "== killing worker 1 mid-sweep =="
curl -sf -X POST 127.0.0.1:8355/sweep \
  -d '{"scenario":{"v":1,"base":{"trials":30000,"horizon_years":50},"grid":[{"param":"alpha","values":[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8]}]}}' \
  -o "$WORK/kill.ndjson" &
SWEEP=$!
sleep 1
kill -9 "$W1" 2>/dev/null || true
wait "$SWEEP"
tail -n 1 "$WORK/kill.ndjson"
sleep 1
curl -s 127.0.0.1:8355/healthz | grep -o '"status":"[a-z]*"'

echo "== restarting worker 1 over its cache dir =="
"$WORK/ltsimd" -addr 127.0.0.1:8361 -cache-dir "$WORK/cache-a" -log-level warn &
for i in $(seq 1 50); do
  sleep 0.2
  curl -s 127.0.0.1:8355/healthz | grep -q '"status":"ok"' && break
done
curl -s 127.0.0.1:8355/healthz | grep -o '"status":"[a-z]*"'
echo "== cluster stats (per-node warmth) =="
curl -s 127.0.0.1:8355/stats | python3 -c '
import json, sys
s = json.load(sys.stdin)
print("cluster hit rate %.2f (%d hits / %d misses), %d/%d nodes healthy, %d retries, %d ejections" % (
    s["cluster_hit_rate"], s["cluster_hits"], s["cluster_misses"],
    s["healthy_nodes"], s["nodes"], s["retries"], s["ejections"]))
'
echo "done"
