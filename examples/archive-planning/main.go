// Archive planning: size and cost a preservation system for the paper's
// §2 motivating workload — a consumer photo service — and choose between
// enterprise mirrors, consumer mirrors, and extra consumer replicas the
// way §6.1 argues: dollars against modeled loss probability.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	archive := repro.PhotoService()
	fmt.Printf("collection: %.0fM objects, %.1f PB, %.0f reads/hour aggregate\n",
		float64(1e9)/1e6, archive.TotalGB()/1e6, archive.AccessesPerHour)
	fmt.Printf("an average photo is read every %.1f years — user access cannot be the fault detector (§4.1)\n\n",
		archive.MeanHoursBetweenObjectAccesses()/repro.HoursPerYear)

	// Plan a 1 PB shard of the collection over a 20-year mission.
	const (
		shardGB      = 1e6
		missionYears = 20
	)
	type candidate struct {
		label    string
		drive    repro.DriveSpec
		replicas int
		scrubs   float64
	}
	candidates := []candidate{
		{"enterprise mirror, 3 scrubs/yr", repro.Cheetah146(), 2, 3},
		{"consumer mirror, 3 scrubs/yr", repro.Barracuda200(), 2, 3},
		{"consumer mirror, 12 scrubs/yr", repro.Barracuda200(), 2, 12},
		{"consumer triple, 3 scrubs/yr", repro.Barracuda200(), 3, 3},
		{"consumer triple, 12 scrubs/yr", repro.Barracuda200(), 3, 12},
	}

	fmt.Printf("%-34s %12s %14s %18s\n", "plan", "$/TB-year", "MTTDL (years)", "P(loss in 20y)")
	points := make([]repro.FrontierPoint, 0, len(candidates))
	for _, c := range candidates {
		plan := repro.CostPlan{
			Drive:                 c.drive,
			Replicas:              c.replicas,
			ArchiveGB:             shardGB,
			MissionYears:          missionYears,
			ScrubsPerYear:         c.scrubs,
			AuditCostPerPass:      0.05,
			PowerWattsPerDrive:    10,
			PowerCostPerKWh:       0.10,
			AdminCostPerDriveYear: 20,
		}
		// Per-pair model parameters for this drive and audit schedule,
		// with the Schwarz latent ratio and the paper's alpha.
		params := repro.Params{
			MV:    c.drive.MTTFHours(),
			ML:    c.drive.MTTFHours() / 5,
			MRV:   c.drive.FullScanHours(),
			MRL:   c.drive.FullScanHours(),
			Alpha: 0.1,
		}.WithScrubsPerYear(c.scrubs)
		fp, err := repro.EvaluatePlan(c.label, plan, params)
		if err != nil {
			log.Fatal(err)
		}
		points = append(points, fp)
		fmt.Printf("%-34s %12.0f %14.0f %17.2g%%\n",
			fp.Label, fp.CostPerTBYear, fp.MTTDLYears, 100*fp.LossProb)
	}

	// Recommend: cheapest plan whose mission loss probability is under
	// 0.1%.
	sort.Slice(points, func(i, j int) bool { return points[i].CostPerTBYear < points[j].CostPerTBYear })
	fmt.Println()
	fmt.Println("(r>=3 rows use the paper's eq 12, which assumes detection is instrumented")
	fmt.Println(" to make MDL negligible — treat those MTTDLs as upper bounds, §5.5)")
	fmt.Println()
	for _, fp := range points {
		if fp.LossProb < 1e-3 {
			fmt.Printf("recommendation: %q — cheapest plan with P(loss) < 0.1%% over the mission\n", fp.Label)
			fmt.Println("(§6.1: spend on replicas and audits, not on enterprise drives)")
			return
		}
	}
	fmt.Println("no candidate meets the 0.1% mission loss budget; add replicas or audits")
}
