// Mixed fleet: the §6.1–§6.2 heterogeneity arguments made runnable.
// Per-replica specs let one simulated archive mix consumer and
// enterprise disks, or back an online mirror with an offline tape —
// none of which the analytic model's fleet-wide scalars can express.
//
// Times are scaled 300x below datasheet values so run-to-loss trials
// finish instantly; every ratio the comparison turns on is preserved.
package main

import (
	"fmt"
	"log"

	"repro"
)

const timeScale = 300

// scaled compresses a drive-derived storage spec onto the simulation
// timescale: audits every 200 scaled hours, repairs floored at 2.
func scaled(d repro.DriveSpec) repro.StorageSpec {
	s := repro.DiskStorageSpec(d, 0)
	s.VisibleMean /= timeScale
	s.LatentMean /= timeScale
	s.ScrubsPerYear = 8760.0 / 200
	s.RepairHours = 2
	return s
}

func mttdl(specs ...repro.StorageSpec) float64 {
	cfg, err := repro.FleetConfig(specs...)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	est, err := runner.Estimate(repro.SimOptions{Trials: 1500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	return est.MTTDL.Point
}

func main() {
	consumer := scaled(repro.Barracuda200())
	enterprise := scaled(repro.Cheetah146())

	// An offline tape tier: slower fault clock (shelved media dodge
	// in-service wear), ten-times-rarer audits, handling-scale repair.
	tape := repro.OfflineStorageSpec(
		repro.TapeShelf(200, 80, 24, 0.001, 0.001, 15),
		3*consumer.VisibleMean, 3*consumer.LatentMean, 8760.0/2000)
	tape.RepairHours = 2.4

	hw := map[string]float64{ // 1 TB of archive, §6.1 prices
		consumer.Label:   repro.Barracuda200().PricePerGB * 1000,
		enterprise.Label: repro.Cheetah146().PricePerGB * 1000,
		tape.Label:       40, // LTO-3 media, ~$0.04/GB in 2005
	}

	fmt.Println("== Three-replica fleets, consumer vs enterprise vs mixed (§6.1) ==")
	fmt.Println()
	fleets := []struct {
		name  string
		specs []repro.StorageSpec
	}{
		{"3x consumer", []repro.StorageSpec{consumer, consumer, consumer}},
		{"2 consumer + 1 enterprise", []repro.StorageSpec{consumer, consumer, enterprise}},
		{"3x enterprise", []repro.StorageSpec{enterprise, enterprise, enterprise}},
		{"2x disk + 1 tape tier", []repro.StorageSpec{consumer, consumer, tape}},
	}
	base := 0.0
	for i, f := range fleets {
		m := mttdl(f.specs...)
		if i == 0 {
			base = m
		}
		var cost float64
		for _, s := range f.specs {
			cost += hw[s.Label]
		}
		fmt.Printf("%-28s MTTDL %8.0f scaled h (%.1fx baseline)   hardware $%7.0f/TB\n",
			f.name, m, m/base, cost)
	}

	fmt.Println()
	fmt.Println("The §6.1 punchline survives mixing: every enterprise substitution")
	fmt.Println("raises MTTDL but buys less reliability per dollar than another")
	fmt.Println("consumer copy — and a cheap, rarely-audited tape tier rivals a")
	fmt.Println("third disk by failing on a different clock (§6.2, §6.5).")
}
