// Benchmarks regenerating every figure and numeric analysis of the paper
// (one benchmark per DESIGN.md §3 experiment), plus micro-benchmarks of
// the core primitives. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benches run in Quick mode (reduced Monte Carlo budgets);
// cmd/ltexp without -quick produces the full-fidelity EXPERIMENTS.md
// numbers.
package repro_test

import (
	"io"
	"testing"

	"repro"
)

// benchExperiment runs one registered experiment per iteration and
// renders its artifacts to io.Discard, so the measured cost covers the
// full regeneration path.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := repro.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(repro.ExperimentConfig{Seed: uint64(i) + 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range res.Tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		for _, p := range res.Plots {
			if err := p.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Figure 1: fault lifecycle timeline.
func BenchmarkFig1FaultTimeline(b *testing.B) { benchExperiment(b, "F1") }

// Figure 2 / eqs 3-6: double-fault combination matrix.
func BenchmarkFig2DoubleFaultMatrix(b *testing.B) { benchExperiment(b, "F2") }

// §5.4 worked example 1: no scrubbing, MTTDL 32.0 years.
func BenchmarkE1NoScrub(b *testing.B) { benchExperiment(b, "E1") }

// §5.4 worked example 2: scrubbing 3x/year, MTTDL 6128.7 years.
func BenchmarkE2Scrubbed(b *testing.B) { benchExperiment(b, "E2") }

// §5.4 worked example 3: alpha = 0.1, MTTDL 612.9 years.
func BenchmarkE3Correlated(b *testing.B) { benchExperiment(b, "E3") }

// §5.4 worked example 4: negligent latent handling, MTTDL 159.8 years.
func BenchmarkE4Negligent(b *testing.B) { benchExperiment(b, "E4") }

// §5.4: alpha bounds, five orders of magnitude.
func BenchmarkE5AlphaBounds(b *testing.B) { benchExperiment(b, "E5") }

// §5.5 / eq 12: replication x correlation sweep.
func BenchmarkE6ReplicationSweep(b *testing.B) { benchExperiment(b, "E6") }

// §6.1: consumer vs enterprise drive economics.
func BenchmarkE7DriveEconomics(b *testing.B) { benchExperiment(b, "E7") }

// §6.2: audit frequency sweep and disk-vs-tape comparison.
func BenchmarkE8AuditStrategies(b *testing.B) { benchExperiment(b, "E8") }

// §5.3 / eq 8: Monte Carlo validation grid.
func BenchmarkE9ModelValidation(b *testing.B) { benchExperiment(b, "E9") }

// §6.6: audit wear optimum and buggy repair.
func BenchmarkE10Tradeoffs(b *testing.B) { benchExperiment(b, "E10") }

// §5.5 / §6.5: replication without independence.
func BenchmarkE11Independence(b *testing.B) { benchExperiment(b, "E11") }

// §6 / §4.1: format migration cycling.
func BenchmarkE12FormatMigration(b *testing.B) { benchExperiment(b, "E12") }

// §7: erasure coding vs replication at equal overhead.
func BenchmarkE13ErasureVsReplication(b *testing.B) { benchExperiment(b, "E13") }

// §6.5: hardware-batch aging vs rolling procurement.
func BenchmarkE14BatchAging(b *testing.B) { benchExperiment(b, "E14") }

// §6.1–§6.2: heterogeneous fleets — mixed consumer+enterprise replicas
// and a disk+tape tiered archive, through the per-replica spec path.
func BenchmarkE15MixedFleet(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkEstimateHeterogeneous measures a parallel estimation of a
// three-tier fleet (consumer disk + enterprise disk + tape) built from
// named storage specs — the per-replica spec path's unit of work.
func BenchmarkEstimateHeterogeneous(b *testing.B) {
	consumer := scaledDiskStorageSpec(repro.Barracuda200())
	enterprise := scaledDiskStorageSpec(repro.Cheetah146())
	tape := repro.OfflineStorageSpec(repro.TapeShelf(200, 80, 24, 0.001, 0.001, 15),
		3*consumer.VisibleMean, 3*consumer.LatentMean, 8760.0/2000)
	tape.RepairHours = 2.4
	cfg, err := repro.FleetConfig(consumer, enterprise, tape)
	if err != nil {
		b.Fatal(err)
	}
	r, err := repro.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(repro.SimOptions{Trials: 200, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Micro-benchmarks of the core primitives ----

// BenchmarkModelMTTDL measures one closed-form evaluation (clamped eq 7).
func BenchmarkModelMTTDL(b *testing.B) {
	p := repro.PaperCorrelated()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.MTTDL()
	}
	_ = sink
}

// BenchmarkModelSensitivities measures the §6 strategy ranking.
func BenchmarkModelSensitivities(b *testing.B) {
	p := repro.PaperCorrelated()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := p.Sensitivities(2); len(s) == 0 {
			b.Fatal("no sensitivities")
		}
	}
}

// BenchmarkSimTrialScrubbedMirror measures one run-to-loss trial of the
// paper's scrubbed mirror (the E2 workload unit).
func BenchmarkSimTrialScrubbedMirror(b *testing.B) {
	cfg, err := repro.PaperSimConfig(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := repro.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := r.RunTrial(1, uint64(i), 0)
		if !res.Lost {
			b.Fatal("run-to-loss trial did not lose")
		}
	}
}

// BenchmarkSimTrialHorizon measures one 50-year censored trial, the unit
// of loss-probability estimation.
func BenchmarkSimTrialHorizon(b *testing.B) {
	cfg, err := repro.PaperSimConfig(3, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := repro.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	horizon := repro.YearsToHours(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RunTrial(1, uint64(i), horizon)
	}
}

// BenchmarkEstimateParallel measures a full parallel estimation of the
// fast mirror used throughout the test suite.
func BenchmarkEstimateParallel(b *testing.B) {
	rep, err := repro.AutomatedRepair(10, 10, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := repro.SimConfig{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  2000,
		Scrub:       repro.NoScrub(),
		Repair:      rep,
		Correlation: repro.IndependentReplicas(),
	}
	r, err := repro.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(repro.SimOptions{Trials: 200, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
