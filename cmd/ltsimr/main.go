// Command ltsimr fronts an ltsimd cluster: a stateless router that
// expands scenarios once, consistent-hashes request fingerprints across
// N workers (bounded-load ring, virtual nodes), and coalesces duplicate
// in-flight keys cluster-wide before dispatch — so the cluster behaves
// like one big daemon whose cache warmth is the sum of its workers'.
//
//	ltsimd -addr :8361 -cache-dir /var/cache/ltsimd-a &
//	ltsimd -addr :8362 -cache-dir /var/cache/ltsimd-b &
//	ltsimr -addr :8355 -worker http://localhost:8361 -worker http://localhost:8362
//	curl -s -X POST localhost:8355/estimate -d '{"alpha":0.1,"trials":2000}'
//	curl -s -X POST localhost:8355/sweep -d '{"scenario":{"v":1,"base":{"trials":2000},"grid":[{"param":"replicas","values":[2,3,4]}]}}'
//	curl -s localhost:8355/healthz   # aggregated: ok | degraded | down
//	curl -s localhost:8355/stats     # per-node cache warmth + router counters
//	curl -s localhost:8355/metrics
//
// A worker that stops answering is ejected from the ring (its in-flight
// requests retry on the ring successor) and re-admitted automatically
// when its /healthz recovers; because ejected nodes keep their ring
// positions, recovery restores the exact key ownership — and the warm
// disk store behind it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

// workerList collects repeatable -worker flags.
type workerList []string

func (w *workerList) String() string { return strings.Join(*w, ",") }
func (w *workerList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.HasPrefix(part, "http://") && !strings.HasPrefix(part, "https://") {
			part = "http://" + part
		}
		*w = append(*w, part)
	}
	return nil
}

func main() {
	var workers workerList
	var (
		addr         = flag.String("addr", ":8355", "listen address")
		vnodes       = flag.Int("vnodes", 64, "virtual nodes per worker on the hash ring")
		loadFactor   = flag.Float64("load-factor", 1.25, "bounded-load ceiling: a worker is skipped while its in-flight load exceeds this multiple of the mean")
		probe        = flag.Duration("probe", 2*time.Second, "health-probe interval (ejection and re-admission cadence)")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		sweepPar     = flag.Int("sweep-parallel", 0, "concurrent sweep points dispatched cluster-wide (0 = 8 per worker)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Var(&workers, "worker", "ltsimd base URL (repeatable, or comma-separated)")
	flag.Parse()

	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "ltsimr: at least one -worker URL is required")
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ltsimr: -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := router.Config{
		VNodes:           *vnodes,
		LoadFactor:       *loadFactor,
		ProbeInterval:    *probe,
		ProbeTimeout:     *probeTimeout,
		SweepConcurrency: *sweepPar,
		Logger:           logger,
	}
	for _, url := range workers {
		cfg.Workers = append(cfg.Workers, router.Worker{URL: url})
	}
	rt, err := router.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltsimr:", err)
		os.Exit(2)
	}
	defer rt.Close()

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", *addr, "workers", len(workers), "vnodes", *vnodes, "load_factor", *loadFactor)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ltsimr:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ltsimr:", err)
		os.Exit(1)
	}
}
