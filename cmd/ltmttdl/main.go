// Command ltmttdl evaluates the paper's analytic reliability model for a
// parameter set given on the command line: MTTDL through the general
// clamped eq 7, the regime approximation, replication scaling (eq 12),
// mission loss probability, and the §6 strategy sensitivity ranking.
//
// Examples:
//
//	ltmttdl                           # the paper's §5.4 scrubbed scenario
//	ltmttdl -scrubs-per-year 0        # no auditing (32-year MTTDL)
//	ltmttdl -alpha 0.1 -replicas 4    # correlated 4-way replication
//	ltmttdl -mv 1e6 -ml 2e5 -mrv 0.5 -mrl 0.5 -mdl 720 -mission 100
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/model"
	"repro/internal/report"
)

func main() {
	var (
		mv      = flag.Float64("mv", model.PaperMV, "mean time to visible fault, hours")
		ml      = flag.Float64("ml", model.PaperML, "mean time to latent fault, hours (inf = none)")
		mrv     = flag.Float64("mrv", model.PaperMRV, "mean time to repair a visible fault, hours")
		mrl     = flag.Float64("mrl", model.PaperMRL, "mean time to repair a detected latent fault, hours")
		mdl     = flag.Float64("mdl", -1, "mean latent detection time, hours (-1 = derive from -scrubs-per-year)")
		scrubs  = flag.Float64("scrubs-per-year", 3, "audit frequency when -mdl is not given (0 = never)")
		alpha   = flag.Float64("alpha", 1, "correlation factor in (0,1]")
		mission = flag.Float64("mission", 50, "mission length in years for the loss probability")
		reps    = flag.Int("replicas", 2, "replica count for the eq-12 scaling table")
	)
	flag.Parse()

	p := model.Params{MV: *mv, ML: *ml, MRV: *mrv, MRL: *mrl, Alpha: *alpha}
	if *mdl >= 0 {
		p.MDL = *mdl
	} else {
		p = p.WithScrubsPerYear(*scrubs)
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ltmttdl:", err)
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "ltmttdl: -replicas must be >= 1")
		os.Exit(2)
	}

	if err := run(p, *mission, *reps); err != nil {
		fmt.Fprintln(os.Stderr, "ltmttdl:", err)
		os.Exit(1)
	}
}

func run(p model.Params, missionYears float64, replicas int) error {
	out := os.Stdout
	params := report.NewTable("Model parameters (hours)",
		"MV", "ML", "MRV", "MRL", "MDL", "alpha")
	params.MustAddRow(p.MV, p.ML, p.MRV, p.MRL, p.MDL, p.Alpha)
	if err := params.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	mission := model.YearsToHours(missionYears)
	approx, regime := p.Approximation()
	mttdl := report.NewTable("Mirrored reliability",
		"quantity", "value")
	mttdl.MustAddRow("regime", regime.String())
	mttdl.MustAddRow("MTTDL, clamped eq 7 (years)", model.Years(p.MTTDL()))
	mttdl.MustAddRow("MTTDL, regime approximation (years)", model.Years(approx))
	if closed := p.MTTDLClosedForm(); !math.IsInf(closed, 0) {
		mttdl.MustAddRow("MTTDL, literal eq 8 (years)", model.Years(closed))
	}
	mttdl.MustAddRow(fmt.Sprintf("P(loss in %.0f years)", missionYears),
		p.LossProbability(mission))
	mttdl.MustAddRow("alpha lower bound 10*MRV/MV", p.AlphaLowerBound())
	if err := mttdl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	repl := report.NewTable("Replication scaling (eq 12; assumes MDL ~ 0 and similar fault classes)",
		"replicas", "MTTDL (years)", fmt.Sprintf("P(loss in %.0fy)", missionYears))
	for r := 1; r <= replicas; r++ {
		m := p.ReplicatedMTTDL(r)
		repl.MustAddRow(r, model.Years(m), model.FaultProbability(mission, m))
	}
	if err := repl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	sens := report.NewTable("Strategy sensitivity: improve each §6 lever 2x",
		"lever", "MTTDL gain", "local elasticity")
	for _, s := range p.Sensitivities(2) {
		sens.MustAddRow(string(s.Lever), s.Gain, s.Elasticity)
	}
	return sens.Render(out)
}
