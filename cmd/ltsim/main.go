// Command ltsim runs the event-driven Monte Carlo simulator on a
// replicated-storage configuration and reports MTTDL (with confidence
// interval), mission loss probability, the empirical Figure-2 double-fault
// matrix, and the analytic model's prediction for the same system.
//
// The default flags describe a uniform fleet. Repeatable -replica flags
// instead build a heterogeneous fleet (§6.1–§6.2), one replica per flag,
// each either a named tier or explicit key=value pairs:
//
//	ltsim                                  # the paper's scrubbed mirror
//	ltsim -scrubs-per-year 0 -trials 5000  # the 32-year no-scrub scenario
//	ltsim -alpha 0.1 -replicas 3 -horizon 50
//	ltsim -replica consumer -replica consumer -replica enterprise
//	ltsim -replica consumer -replica mv=2e6,ml=4e5,scrubs=12,repair=1,label=nas
//
// Named tiers: "consumer" and "enterprise" are the §6.1 drives at the
// -scrubs-per-year audit frequency; "tape" is an offline shelf audited
// once a year with handling-scale repair times (storage.TierSpec defines
// all three). In -replica mode the uniform-fleet flags -mv, -ml, -mrv,
// -mrl, -replicas, and -repair-bug are ignored; -alpha, -audit-wear,
// -trials, -horizon, and -seed apply.
//
// Instead of a fixed -trials budget, -target-rel runs the simulation
// adaptively: it stops at the first deterministic batch boundary where
// the relevant confidence interval's relative half-width reaches the
// target (the loss-probability interval under a -horizon, else the
// MTTDL interval), bounded by -max-trials. Adaptive results depend only
// on (config, seed, target, cap, batch size) — never on worker count.
// -progress reports live snapshots on stderr while any run executes:
//
//	ltsim -target-rel 0.05 -horizon 50 -progress
//	ltsim -target-rel 0.02 -max-trials 200000 -trials 5000
//
// For rare-event configurations (3+ replicas, fast repair) -bias turns
// on importance-sampled failure biasing: in-window fault hazards are
// boosted and each trial carries a likelihood-ratio weight, so losses
// are observed orders of magnitude more often while the reported
// estimate stays unbiased. -bias auto lets the analytic model pick the
// boost from the configuration and horizon; an explicit factor >= 1
// pins it. Requires -horizon; the report then includes the resolved β
// and the effective (equal-weight) loss count:
//
//	ltsim -replicas 3 -horizon 10 -bias auto -target-rel 0.1
//
// -hazard applies a non-stationary fault profile to every replica: the
// profile multiplies both fault channels' rates over each replica's age
// (burn-in, wear-out — see docs/MODEL.md). The value is a JSON
// HazardSpec object, or @file to read one:
//
//	ltsim -hazard '{"kind":"weibull","shape":2,"scale_hours":50000}' -horizon 10
//	ltsim -hazard '{"kind":"bathtub","burn_in_hours":8760,"burn_in_factor":4,
//	               "wear_onset_hours":43800,"wear_factor":8,"normalize_hours":87600}' -horizon 10
//	ltsim -hazard @bathtub.json -horizon 10
//
// "normalize_hours" rescales the profile to mean multiplier 1 over that
// horizon, so profiled and unprofiled fleets compare at equal mean rates.
//
// -record and -trace connect the simulator to NDJSON fault traces
// (internal/trace; see examples/trace-replay). -record file runs the
// configured system and writes every trial's fault/detection/repair
// events as a replayable trace (requires -horizon; incompatible with
// -bias and -target-rel). -trace file replays a recorded trace through
// the configured system instead of sampling fresh faults: trial count
// and horizon come from the trace header, and by default repairs are
// pinned to the recorded completions, reproducing the recorded outcomes
// exactly. -replay-policy instead re-decides detection and repair from
// the flags — the counterfactual "what if this fault history had hit a
// better-maintained fleet" question:
//
//	ltsim -record run.ndjson -horizon 30 -trials 5000
//	ltsim -trace run.ndjson                          # pinned: same outcomes
//	ltsim -trace run.ndjson -replay-policy -scrubs-per-year 12
//
// Both are local-only (trace files live on this machine) and cannot be
// combined with -server or -scenario.
//
// Two flags connect the CLI to the ltsimd daemon:
//
//	-json        emit the machine-readable estimate (the exact encoding
//	             the daemon serves) instead of text tables
//	-server URL  send the request to a running ltsimd instead of
//	             simulating locally; the response body (always JSON) is
//	             printed and the cache disposition plus the daemon's
//	             request ID (X-Ltsimd-Request, for correlating with the
//	             daemon's request log) go to stderr. With
//	             -progress the daemon streams NDJSON frames: progress
//	             renders on stderr, the final result on stdout.
//	             Connection failures and 503s retry with jittered
//	             exponential backoff, bounded by -retries — so a daemon
//	             restart or a briefly saturated queue doesn't fail a
//	             scripted sweep
//
// Local -json output and a daemon response for the same flags are
// byte-identical: both build the same sim.Config through the same
// service request type and encode through internal/report.
//
// -scenario file.json runs a declarative scenario document (see
// internal/scenario: a base request plus named grid/zip sweep axes)
// instead of the flag-described single system. Locally the document is
// expanded and every point simulated in expansion order, emitting the
// same NDJSON sweep lines the daemon streams ({"index", "key",
// "result"} per point plus a trailing summary); with -server the
// document itself is relayed to POST /sweep and expanded server-side —
// the two spellings produce byte-identical result lines against a
// policy-free daemon. The single-run configuration flags are ignored in
// scenario mode; the document is self-contained.
//
//	ltsim -scenario examples/scenario-sweep/scenario.json
//	ltsim -scenario sweep.json -server http://localhost:8356
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	var replicaFlags []string
	var (
		mv        = flag.Float64("mv", model.PaperMV, "per-replica mean time to visible fault, hours")
		ml        = flag.Float64("ml", model.PaperML, "per-replica mean time to latent fault, hours (inf = none)")
		mrv       = flag.Float64("mrv", model.PaperMRV, "visible repair time, hours")
		mrl       = flag.Float64("mrl", model.PaperMRL, "latent repair time, hours")
		scrubs    = flag.Float64("scrubs-per-year", 3, "periodic audit frequency (0 = never)")
		alpha     = flag.Float64("alpha", 1, "correlation factor in (0,1]")
		reps      = flag.Int("replicas", 2, "replica count (uniform fleet)")
		trials    = flag.Int("trials", 1000, "Monte Carlo trials")
		horizon   = flag.Float64("horizon", 0, "censoring horizon in years (0 = run every trial to loss)")
		seed      = flag.Uint64("seed", 1, "random seed")
		bug       = flag.Float64("repair-bug", 0, "probability a repair plants a latent fault (§6.6)")
		wear      = flag.Float64("audit-wear", 0, "probability an audit pass plants a latent fault (§6.6)")
		asJSON    = flag.Bool("json", false, "emit the machine-readable estimate JSON instead of tables")
		server    = flag.String("server", "", "base URL of a running ltsimd (e.g. http://localhost:8356); query it instead of simulating locally")
		targetRel = flag.Float64("target-rel", 0, "adaptive mode: stop when the CI relative half-width reaches this target (0 = fixed -trials budget)")
		maxTrials = flag.Int("max-trials", 0, "adaptive trial cap (0 = the simulator's default); only with -target-rel")
		progress  = flag.Bool("progress", false, "report live progress on stderr while the run executes")
		biasMode  = flag.String("bias", "off", "rare-event importance sampling: off, auto (model-chosen boost), or an explicit factor >= 1; requires -horizon")
		scenPath  = flag.String("scenario", "", "path to a scenario document (JSON); expand and run the sweep locally, or relay it to -server (single-run flags are ignored)")
		retries   = flag.Int("retries", 3, "with -server: retry attempts after a connection failure or 503 (jittered exponential backoff; 0 = fail fast)")
		hazard    = flag.String("hazard", "", "non-stationary fault profile: a JSON HazardSpec object, or @file to read one")
		record    = flag.String("record", "", "record every trial's fault/repair events to this NDJSON trace file (requires -horizon; local only)")
		tracePath = flag.String("trace", "", "replay a recorded NDJSON trace through the configured system instead of sampling faults (local only)")
		rePolicy  = flag.Bool("replay-policy", false, "with -trace: re-decide detection and repair from the flags instead of pinning recorded repairs (counterfactual replay)")
	)
	flag.Func("replica", "add one replica to a heterogeneous fleet: a named tier (consumer, enterprise, tape) or key=value pairs (mv, ml, scrubs, offset, repair, label, access-rate, access-coverage); repeatable", func(v string) error {
		replicaFlags = append(replicaFlags, v)
		return nil
	})
	flag.Parse()

	// In adaptive mode an untouched -trials default must not become a
	// 1000-trial floor: only an explicit -trials sets the minimum.
	trialsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trials" {
			trialsSet = true
		}
	})
	effTrials := *trials
	if *targetRel > 0 && !trialsSet {
		effTrials = 0
	}

	bias, err := parseBias(*biasMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltsim:", err)
		os.Exit(2)
	}

	if err := run(config{
		mv: *mv, ml: *ml, mrv: *mrv, mrl: *mrl,
		scrubs: *scrubs, alpha: *alpha, replicas: *reps,
		trials: effTrials, horizonYears: *horizon, seed: *seed,
		bug: *bug, wear: *wear, replicaSpecs: replicaFlags,
		asJSON: *asJSON, server: *server,
		targetRel: *targetRel, maxTrials: *maxTrials, progress: *progress,
		bias: bias, scenarioPath: *scenPath, retries: *retries,
		hazard: *hazard, recordPath: *record, tracePath: *tracePath,
		replayPolicy: *rePolicy,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ltsim:", err)
		os.Exit(1)
	}
}

type config struct {
	mv, ml, mrv, mrl float64
	scrubs, alpha    float64
	replicas, trials int
	horizonYears     float64
	seed             uint64
	bug, wear        float64
	replicaSpecs     []string
	asJSON           bool
	server           string
	targetRel        float64
	maxTrials        int
	progress         bool
	bias             float64
	scenarioPath     string
	retries          int
	hazard           string
	recordPath       string
	tracePath        string
	replayPolicy     bool
}

// parseHazard decodes the -hazard value — a JSON HazardSpec object, or
// @file naming one — strictly, so a misspelled parameter fails instead
// of silently simulating the default profile.
func parseHazard(v string) (*service.HazardSpec, error) {
	data := []byte(v)
	if strings.HasPrefix(v, "@") {
		b, err := os.ReadFile(v[1:])
		if err != nil {
			return nil, fmt.Errorf("-hazard: %w", err)
		}
		data = b
	}
	var spec service.HazardSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("-hazard: %v", err)
	}
	if _, err := spec.Build(); err != nil {
		return nil, fmt.Errorf("-hazard: %v", err)
	}
	return &spec, nil
}

// parseBias maps the -bias flag onto the wire value: 0 off, sim.AutoBias
// for the model-chosen factor, an explicit β >= 1 otherwise.
func parseBias(v string) (float64, error) {
	switch v {
	case "", "off":
		return 0, nil
	case "auto":
		return sim.AutoBias, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 1 {
		return 0, fmt.Errorf("-bias %q must be off, auto, or a factor >= 1", v)
	}
	return f, nil
}

// parseReplica resolves one -replica flag value into a storage spec.
func parseReplica(v string, defaultScrubs float64) (storage.Spec, error) {
	if s, ok := storage.TierSpec(v, defaultScrubs); ok {
		return s, nil
	}
	s := storage.Spec{Label: "custom", LatentMean: math.Inf(1)}
	for _, kv := range strings.Split(v, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return storage.Spec{}, fmt.Errorf("replica %q: %q is not key=value (or a named tier: %s)", v, kv, strings.Join(storage.TierNames(), ", "))
		}
		if key == "label" {
			s.Label = val
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return storage.Spec{}, fmt.Errorf("replica %q: %s: %v", v, key, err)
		}
		switch key {
		case "mv":
			s.VisibleMean = f
		case "ml":
			s.LatentMean = f
		case "scrubs":
			s.ScrubsPerYear = f
		case "offset":
			s.ScrubOffset = f
		case "repair":
			s.RepairHours = f
		case "access-rate":
			s.AccessRatePerHour = f
		case "access-coverage":
			s.AccessCoverage = f
		default:
			return storage.Spec{}, fmt.Errorf("replica %q: unknown key %q", v, key)
		}
	}
	return s, nil
}

// buildRequest assembles the service request the flags describe — the
// single construction path shared by local one-shot runs, -json output,
// and -server client mode, so all three agree on the configuration (and
// the daemon's cache key).
func buildRequest(c config) (service.EstimateRequest, error) {
	req := service.EstimateRequest{
		Alpha:          c.alpha,
		AuditWearProb:  c.wear,
		ScrubsPerYear:  &c.scrubs,
		Trials:         c.trials,
		HorizonYears:   c.horizonYears,
		Seed:           &c.seed,
		TargetRelWidth: c.targetRel,
		MaxTrials:      c.maxTrials,
		Bias:           c.bias,
		Progress:       c.progress,
	}
	if c.hazard != "" {
		h, err := parseHazard(c.hazard)
		if err != nil {
			return service.EstimateRequest{}, err
		}
		req.Hazard = h
	}
	if len(c.replicaSpecs) > 0 {
		for i, v := range c.replicaSpecs {
			s, err := parseReplica(v, c.scrubs)
			if err != nil {
				return service.EstimateRequest{}, err
			}
			if err := s.Validate(); err != nil {
				return service.EstimateRequest{}, fmt.Errorf("replica %d: %w", i, err)
			}
			req.Fleet = append(req.Fleet, service.FleetEntryFromSpec(s))
		}
		return req, nil
	}
	// On the wire, zero means "use the default" — reject it here so an
	// explicit -mv 0 errors instead of silently becoming the paper value.
	for name, v := range map[string]float64{"-mv": c.mv, "-ml": c.ml} {
		if v == 0 {
			return service.EstimateRequest{}, fmt.Errorf("%s must be positive (or inf to disable the channel)", name)
		}
	}
	for name, v := range map[string]float64{"-mrv": c.mrv, "-mrl": c.mrl} {
		if v == 0 {
			return service.EstimateRequest{}, fmt.Errorf("%s must be positive", name)
		}
	}
	req.Replicas = c.replicas
	req.VisibleMeanHours = service.WireFloat(c.mv)
	req.LatentMeanHours = service.WireFloat(c.ml)
	req.RepairVisibleHours = service.WireFloat(c.mrv)
	req.RepairLatentHours = service.WireFloat(c.mrl)
	req.RepairBugProb = c.bug
	return req, nil
}

func run(c config) error {
	if c.recordPath != "" || c.tracePath != "" {
		if c.server != "" || c.scenarioPath != "" {
			return errors.New("-record and -trace are local single-run modes; they cannot be combined with -server or -scenario")
		}
		if c.recordPath != "" && c.tracePath != "" {
			return errors.New("-record and -trace are mutually exclusive")
		}
	}
	if c.scenarioPath != "" {
		return runScenario(c.scenarioPath, c.server, c.retries)
	}
	req, err := buildRequest(c)
	if err != nil {
		return err
	}
	if c.server != "" {
		return runRemote(c.server, req, c.retries)
	}

	cfg, opt, err := req.Build()
	if err != nil {
		return err
	}
	if c.recordPath != "" {
		return runRecord(c, cfg, opt)
	}
	if c.tracePath != "" {
		return runReplay(c, cfg, opt)
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return err
	}
	var sink func(sim.Progress)
	if c.progress {
		var last time.Time
		sink = func(p sim.Progress) {
			if !p.Final && !last.IsZero() && time.Since(last) < 250*time.Millisecond {
				return
			}
			last = time.Now()
			printProgress(p)
		}
	}
	est, err := runner.EstimateStream(context.Background(), opt, sink)
	if err != nil {
		return err
	}

	return emit(c, cfg, est, opt.Horizon)
}

// emit renders a local run's estimate: the daemon's JSON encoding with
// -json, human-readable tables otherwise.
func emit(c config, cfg sim.Config, est sim.Estimate, horizonHours float64) error {
	if c.asJSON {
		body, err := json.Marshal(report.NewEstimateJSON(est, horizonHours))
		if err != nil {
			return err
		}
		_, err = fmt.Println(string(body))
		return err
	}
	return renderTables(os.Stdout, c, cfg, est)
}

// runRecord simulates the configured system while recording every
// trial's fault/detection/repair events, writes the NDJSON trace, and
// reports the run's own estimate — a pinned replay of the written trace
// reproduces exactly these outcomes.
func runRecord(c config, cfg sim.Config, opt sim.Options) error {
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return err
	}
	tr, est, err := runner.RecordTrace(opt)
	if err != nil {
		return err
	}
	f, err := os.Create(c.recordPath)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ltsim: recorded %d events over %d trials (horizon %v h) to %s\n",
		len(tr.Events), tr.Header.Trials, tr.Header.HorizonHours, c.recordPath)
	return emit(c, cfg, est, opt.Horizon)
}

// runReplay drives a recorded trace through the configured system:
// pinned to the recorded repairs by default, re-deciding them from the
// flags with -replay-policy. Trial count and horizon come from the
// trace header, overriding -trials and -horizon.
func runReplay(c config, cfg sim.Config, opt sim.Options) error {
	f, err := os.Open(c.tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.Parse(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", c.tracePath, err)
	}
	runner, err := sim.NewReplayRunner(cfg, tr, !c.replayPolicy)
	if err != nil {
		return err
	}
	est, err := runner.ReplayEstimate(opt)
	if err != nil {
		return err
	}
	mode := "pinned"
	if c.replayPolicy {
		mode = "policy"
	}
	fmt.Fprintf(os.Stderr, "ltsim: replayed %d trials from %s (%s mode)\n", tr.Header.Trials, c.tracePath, mode)
	// The replay's censoring horizon is the trace's, not the flag's; the
	// loss-probability table row should follow it.
	c.horizonYears = model.Years(tr.Header.HorizonHours)
	return emit(c, cfg, est, tr.Header.HorizonHours)
}

// runScenario executes a scenario document: relayed to a daemon's
// /sweep when server is set, otherwise expanded and simulated locally.
// Both paths emit the daemon's NDJSON sweep lines on stdout — point
// result lines are byte-identical between the two against a daemon with
// no request policy (local runs cannot know a remote -target-rel /
// -max-trials policy); only ordering and the summary line differ.
func runScenario(path, server string, retries int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := scenario.Parse(data)
	if err != nil {
		return err
	}
	if server != "" {
		return relayScenario(server, doc, retries)
	}
	points, err := scenario.Expand(doc)
	if err != nil {
		return err
	}
	start := time.Now()
	enc := json.NewEncoder(os.Stdout)
	summary := service.SweepLine{Summary: true, Requested: len(points)}
	for _, pt := range points {
		line := runScenarioPoint(pt)
		if line.Error != "" {
			summary.Errors++
		} else {
			summary.OK++
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	summary.ElapsedMS = time.Since(start).Milliseconds()
	return enc.Encode(summary)
}

// runScenarioPoint simulates one expanded point and encodes it exactly
// as the daemon's sweep would: same fingerprint, same result bytes.
func runScenarioPoint(pt scenario.Point) service.SweepLine {
	line := service.SweepLine{Index: pt.Index}
	key, est, opt, err := pt.Execute()
	if err != nil {
		line.Error = err.Error()
		return line
	}
	line.Key = key
	body, err := json.Marshal(report.NewEstimateJSON(est, opt.Horizon))
	if err != nil {
		line.Error = err.Error()
		return line
	}
	line.Result = body
	return line
}

// postWithRetry posts body to url, retrying on connection failure or a
// 503 (the daemon's backpressure answer, or a cluster router with every
// worker momentarily ejected) with jittered exponential backoff: 100ms
// base doubling to a 2s cap, each sleep stretched by up to half its
// length again so synchronized clients (a sweep script fanning out, a
// daemon restarting under systemd) don't re-arrive in lockstep. retries
// bounds the attempts after the first; any other status — including
// 4xx, which a retry can never fix — returns immediately.
func postWithRetry(url string, body []byte, retries int) (*http.Response, error) {
	const (
		baseDelay = 100 * time.Millisecond
		maxDelay  = 2 * time.Second
	)
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		if err == nil {
			if attempt >= retries {
				// Hand the final 503 to the caller so its status-specific
				// error rendering (request ID and all) still applies.
				return resp, nil
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(payload)))
		} else {
			lastErr = err
			if attempt >= retries {
				return nil, lastErr
			}
		}
		delay := baseDelay << attempt
		if delay > maxDelay {
			delay = maxDelay
		}
		delay += time.Duration(rand.Int64N(int64(delay)/2 + 1))
		fmt.Fprintf(os.Stderr, "ltsim: %v; retrying in %s (%d/%d)\n", lastErr, delay.Round(time.Millisecond), attempt+1, retries)
		time.Sleep(delay)
	}
}

// relayScenario posts the document to a running ltsimd for server-side
// expansion and streams the NDJSON sweep back verbatim.
func relayScenario(base string, doc scenario.Document, retries int) error {
	body, err := json.Marshal(service.SweepRequest{Scenario: &doc})
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(base, "/") + "/sweep"
	resp, err := postWithRetry(url, body, retries)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	reqID := resp.Header.Get("X-Ltsimd-Request")
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server returned %s%s: %s", resp.Status, requestIDSuffix(reqID), strings.TrimSpace(string(payload)))
	}
	fmt.Fprintf(os.Stderr, "ltsim: scenario expanded and swept by %s%s\n", url, requestIDSuffix(reqID))
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// printProgress renders one live snapshot on stderr.
func printProgress(p sim.Progress) {
	line := fmt.Sprintf("ltsim: %d/%d trials, %d losses, %d censored", p.Trials, p.Budget, p.Losses, p.Censored)
	if p.EffectiveSamples > 0 {
		line += fmt.Sprintf(", ESS %.1f", p.EffectiveSamples)
	}
	if !math.IsInf(p.RelWidth, 1) {
		line += fmt.Sprintf(", rel width %.3f", p.RelWidth)
	}
	if p.TargetRelWidth > 0 {
		line += fmt.Sprintf(" (target %g)", p.TargetRelWidth)
	}
	if p.Final {
		line += " — done"
	}
	fmt.Fprintln(os.Stderr, line)
}

// runRemote sends the request to a running ltsimd and relays the JSON
// response body; the cache disposition header goes to stderr. With
// Progress set the daemon streams NDJSON frames: progress lines render
// on stderr and the final frame's result — the same bytes a plain
// request serves — lands on stdout.
func runRemote(base string, req service.EstimateRequest, retries int) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(base, "/") + "/estimate"
	resp, err := postWithRetry(url, body, retries)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// The daemon tags every response with a request ID; surfacing it lets
	// a user line their invocation up with the daemon's request log.
	reqID := resp.Header.Get("X-Ltsimd-Request")
	if req.Progress && resp.StatusCode == http.StatusOK {
		return relayProgressStream(url, reqID, resp)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %s%s: %s", resp.Status, requestIDSuffix(reqID), strings.TrimSpace(string(payload)))
	}
	if disp := resp.Header.Get("X-Ltsimd-Cache"); disp != "" {
		fmt.Fprintf(os.Stderr, "ltsim: served from %s (%s%s)\n", url, disp, requestIDSuffix(reqID))
	}
	_, err = os.Stdout.Write(payload)
	return err
}

// requestIDSuffix renders a daemon request ID for a stderr annotation or
// error message; empty in, empty out (pre-telemetry daemons).
func requestIDSuffix(id string) string {
	if id == "" {
		return ""
	}
	return ", request " + id
}

// relayProgressStream consumes an NDJSON /estimate progress stream.
func relayProgressStream(url, reqID string, resp *http.Response) error {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawFinal := false
	for sc.Scan() {
		var f service.EstimateFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return fmt.Errorf("bad stream frame %q: %v", sc.Text(), err)
		}
		switch {
		case f.Error != "":
			return fmt.Errorf("server error: %s", f.Error)
		case f.Final:
			fmt.Fprintf(os.Stderr, "ltsim: served from %s (%s%s)\n", url, f.Cache, requestIDSuffix(reqID))
			if _, err := os.Stdout.Write(append(f.Result, '\n')); err != nil {
				return err
			}
			sawFinal = true
		case f.Progress != nil:
			p := f.Progress
			line := fmt.Sprintf("ltsim: %d/%d trials, %d losses, %d censored", p.Trials, p.Budget, p.Losses, p.Censored)
			if p.EffectiveSamples != nil {
				line += fmt.Sprintf(", ESS %.1f", *p.EffectiveSamples)
			}
			if p.RelWidth != nil {
				line += fmt.Sprintf(", rel width %.3f", *p.RelWidth)
			}
			if p.Target > 0 {
				line += fmt.Sprintf(" (target %g)", p.Target)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawFinal {
		return errors.New("stream ended without a final frame")
	}
	return nil
}

// renderTables draws the human-readable report of a local run.
func renderTables(out io.Writer, c config, cfg sim.Config, est sim.Estimate) error {
	if len(cfg.Specs) > 0 {
		fleet := report.NewTable("Heterogeneous fleet",
			"replica", "label", "MV (h)", "ML (h)", "audit", "repair MRV (h)")
		for i, s := range cfg.ReplicaSpecs() {
			fleet.MustAddRow(i, s.Label, s.VisibleMean, s.LatentMean, s.Scrub.Name(), s.Repair.MeanVisible())
		}
		if err := fleet.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	tbl := report.NewTable(fmt.Sprintf("Monte Carlo estimate (%d trials, %d censored)", est.Trials, est.Censored),
		"quantity", "point", "95% CI low", "95% CI high")
	tbl.MustAddRow("MTTDL (years)",
		model.Years(est.MTTDL.Point), model.Years(est.MTTDL.Lo), model.Years(est.MTTDL.Hi))
	if c.horizonYears > 0 {
		tbl.MustAddRow(fmt.Sprintf("P(loss in %.0fy)", c.horizonYears),
			est.LossProb.Point, est.LossProb.Lo, est.LossProb.Hi)
	}
	if est.Bias != 0 {
		tbl.MustAddRow("bias factor β", est.Bias, "", "")
		tbl.MustAddRow("effective losses (ESS)", est.EffectiveSamples, "", "")
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	params := cfg.ModelParams()
	header := "Analytic model for the same system"
	if len(cfg.Specs) > 0 {
		header += " (replica 0's spec)"
	}
	cmp := report.NewTable(header, "quantity", "value")
	cmp.MustAddRow("clamped eq 7 MTTDL (years)", model.Years(params.MTTDL()))
	cmp.MustAddRow("eq 7 / replica-count convention (years)", model.Years(params.MTTDL()/float64(cfg.NumReplicas())))
	regimeVal, regime := params.Approximation()
	cmp.MustAddRow("regime", regime.String())
	cmp.MustAddRow("regime approximation (years)", model.Years(regimeVal))
	if err := cmp.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	mtx := report.NewTable("Empirical double-fault matrix (Figure 2)",
		"first fault", "second fault", "losses", "P(loss | window)")
	for _, first := range []faults.Type{faults.Visible, faults.Latent} {
		for _, second := range []faults.Type{faults.Visible, faults.Latent} {
			p := est.Matrix.ConditionalLossProb(first, second)
			if math.IsNaN(p) {
				continue
			}
			mtx.MustAddRow(first.String(), second.String(), est.Matrix.Losses[first][second], p)
		}
	}
	if err := mtx.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	stats := report.NewTable("Event counts across all trials",
		"visible faults", "latent faults", "detections", "repairs", "shock events", "repair bugs", "audit-induced")
	stats.MustAddRow(est.Stats.VisibleFaults, est.Stats.LatentFaults, est.Stats.Detections,
		est.Stats.Repairs, est.Stats.ShockEvents, est.Stats.RepairBugs, est.Stats.AuditInduced)
	return stats.Render(out)
}
