// Command ltsim runs the event-driven Monte Carlo simulator on a
// replicated-storage configuration and reports MTTDL (with confidence
// interval), mission loss probability, the empirical Figure-2 double-fault
// matrix, and the analytic model's prediction for the same system.
//
// The default flags describe a uniform fleet. Repeatable -replica flags
// instead build a heterogeneous fleet (§6.1–§6.2), one replica per flag,
// each either a named tier or explicit key=value pairs:
//
//	ltsim                                  # the paper's scrubbed mirror
//	ltsim -scrubs-per-year 0 -trials 5000  # the 32-year no-scrub scenario
//	ltsim -alpha 0.1 -replicas 3 -horizon 50
//	ltsim -replica consumer -replica consumer -replica enterprise
//	ltsim -replica consumer -replica mv=2e6,ml=4e5,scrubs=12,repair=1,label=nas
//
// Named tiers: "consumer" and "enterprise" are the §6.1 drives at the
// -scrubs-per-year audit frequency; "tape" is an offline shelf audited
// once a year with handling-scale repair times. In -replica mode the
// uniform-fleet flags -mv, -ml, -mrv, -mrl, -replicas, and -repair-bug
// are ignored; -alpha, -audit-wear, -trials, -horizon, and -seed apply.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	var replicaFlags []string
	var (
		mv      = flag.Float64("mv", model.PaperMV, "per-replica mean time to visible fault, hours")
		ml      = flag.Float64("ml", model.PaperML, "per-replica mean time to latent fault, hours (inf = none)")
		mrv     = flag.Float64("mrv", model.PaperMRV, "visible repair time, hours")
		mrl     = flag.Float64("mrl", model.PaperMRL, "latent repair time, hours")
		scrubs  = flag.Float64("scrubs-per-year", 3, "periodic audit frequency (0 = never)")
		alpha   = flag.Float64("alpha", 1, "correlation factor in (0,1]")
		reps    = flag.Int("replicas", 2, "replica count (uniform fleet)")
		trials  = flag.Int("trials", 1000, "Monte Carlo trials")
		horizon = flag.Float64("horizon", 0, "censoring horizon in years (0 = run every trial to loss)")
		seed    = flag.Uint64("seed", 1, "random seed")
		bug     = flag.Float64("repair-bug", 0, "probability a repair plants a latent fault (§6.6)")
		wear    = flag.Float64("audit-wear", 0, "probability an audit pass plants a latent fault (§6.6)")
	)
	flag.Func("replica", "add one replica to a heterogeneous fleet: a named tier (consumer, enterprise, tape) or key=value pairs (mv, ml, scrubs, offset, repair, label, access-rate, access-coverage); repeatable", func(v string) error {
		replicaFlags = append(replicaFlags, v)
		return nil
	})
	flag.Parse()

	if err := run(config{
		mv: *mv, ml: *ml, mrv: *mrv, mrl: *mrl,
		scrubs: *scrubs, alpha: *alpha, replicas: *reps,
		trials: *trials, horizonYears: *horizon, seed: *seed,
		bug: *bug, wear: *wear, replicaSpecs: replicaFlags,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ltsim:", err)
		os.Exit(1)
	}
}

type config struct {
	mv, ml, mrv, mrl float64
	scrubs, alpha    float64
	replicas, trials int
	horizonYears     float64
	seed             uint64
	bug, wear        float64
	replicaSpecs     []string
}

// parseReplica resolves one -replica flag value into a storage spec.
func parseReplica(v string, defaultScrubs float64) (storage.Spec, error) {
	switch v {
	case "consumer":
		return storage.DiskSpec(storage.Barracuda200(), defaultScrubs), nil
	case "enterprise":
		return storage.DiskSpec(storage.Cheetah146(), defaultScrubs), nil
	case "tape":
		d := storage.Barracuda200()
		shelf := storage.TapeShelf(200, 80, 24, 0.001, 0.001, 15)
		// Shelved media dodge in-service wear; audit once a year.
		return storage.OfflineSpec(shelf, 3*d.MTTFHours(), 3*d.MTTFHours()/model.SchwarzLatentFactor, 1), nil
	}
	s := storage.Spec{Label: "custom", LatentMean: math.Inf(1)}
	for _, kv := range strings.Split(v, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return storage.Spec{}, fmt.Errorf("replica %q: %q is not key=value (or a named tier: consumer, enterprise, tape)", v, kv)
		}
		if key == "label" {
			s.Label = val
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return storage.Spec{}, fmt.Errorf("replica %q: %s: %v", v, key, err)
		}
		switch key {
		case "mv":
			s.VisibleMean = f
		case "ml":
			s.LatentMean = f
		case "scrubs":
			s.ScrubsPerYear = f
		case "offset":
			s.ScrubOffset = f
		case "repair":
			s.RepairHours = f
		case "access-rate":
			s.AccessRatePerHour = f
		case "access-coverage":
			s.AccessCoverage = f
		default:
			return storage.Spec{}, fmt.Errorf("replica %q: unknown key %q", v, key)
		}
	}
	return s, nil
}

// buildConfig assembles the simulator configuration from the flags:
// heterogeneous when -replica flags are present, uniform otherwise.
func buildConfig(c config) (sim.Config, error) {
	var corr faults.Correlation = faults.Independent{}
	if c.alpha < 1 {
		a, err := faults.NewAlphaCorrelation(c.alpha)
		if err != nil {
			return sim.Config{}, err
		}
		corr = a
	}
	if len(c.replicaSpecs) > 0 {
		specs := make([]storage.Spec, len(c.replicaSpecs))
		for i, v := range c.replicaSpecs {
			s, err := parseReplica(v, c.scrubs)
			if err != nil {
				return sim.Config{}, err
			}
			specs[i] = s
		}
		cfg, err := storage.FleetConfig(specs...)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Correlation = corr
		cfg.AuditLatentFaultProb = c.wear
		return cfg, nil
	}
	rep, err := repair.Automated(c.mrv, c.mrl, c.bug)
	if err != nil {
		return sim.Config{}, err
	}
	var strat scrub.Strategy = scrub.None{}
	if c.scrubs > 0 {
		p, err := scrub.NewPeriodic(c.scrubs, 0)
		if err != nil {
			return sim.Config{}, err
		}
		strat = p
	}
	return sim.Config{
		Replicas:             c.replicas,
		VisibleMean:          c.mv,
		LatentMean:           c.ml,
		Scrub:                strat,
		Repair:               rep,
		Correlation:          corr,
		AuditLatentFaultProb: c.wear,
	}, nil
}

func run(c config) error {
	cfg, err := buildConfig(c)
	if err != nil {
		return err
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return err
	}
	est, err := runner.Estimate(sim.Options{
		Trials:  c.trials,
		Seed:    c.seed,
		Horizon: model.YearsToHours(c.horizonYears),
	})
	if err != nil {
		return err
	}

	out := os.Stdout
	if len(cfg.Specs) > 0 {
		fleet := report.NewTable("Heterogeneous fleet",
			"replica", "label", "MV (h)", "ML (h)", "audit", "repair MRV (h)")
		for i, s := range cfg.ReplicaSpecs() {
			fleet.MustAddRow(i, s.Label, s.VisibleMean, s.LatentMean, s.Scrub.Name(), s.Repair.MeanVisible())
		}
		if err := fleet.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	tbl := report.NewTable(fmt.Sprintf("Monte Carlo estimate (%d trials, %d censored)", est.Trials, est.Censored),
		"quantity", "point", "95% CI low", "95% CI high")
	tbl.MustAddRow("MTTDL (years)",
		model.Years(est.MTTDL.Point), model.Years(est.MTTDL.Lo), model.Years(est.MTTDL.Hi))
	if c.horizonYears > 0 {
		tbl.MustAddRow(fmt.Sprintf("P(loss in %.0fy)", c.horizonYears),
			est.LossProb.Point, est.LossProb.Lo, est.LossProb.Hi)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	params := cfg.ModelParams()
	header := "Analytic model for the same system"
	if len(cfg.Specs) > 0 {
		header += " (replica 0's spec)"
	}
	cmp := report.NewTable(header, "quantity", "value")
	cmp.MustAddRow("clamped eq 7 MTTDL (years)", model.Years(params.MTTDL()))
	cmp.MustAddRow("eq 7 / replica-count convention (years)", model.Years(params.MTTDL()/float64(cfg.NumReplicas())))
	regimeVal, regime := params.Approximation()
	cmp.MustAddRow("regime", regime.String())
	cmp.MustAddRow("regime approximation (years)", model.Years(regimeVal))
	if err := cmp.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	mtx := report.NewTable("Empirical double-fault matrix (Figure 2)",
		"first fault", "second fault", "losses", "P(loss | window)")
	for _, first := range []faults.Type{faults.Visible, faults.Latent} {
		for _, second := range []faults.Type{faults.Visible, faults.Latent} {
			p := est.Matrix.ConditionalLossProb(first, second)
			if math.IsNaN(p) {
				continue
			}
			mtx.MustAddRow(first.String(), second.String(), est.Matrix.Losses[first][second], p)
		}
	}
	if err := mtx.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	stats := report.NewTable("Event counts across all trials",
		"visible faults", "latent faults", "detections", "repairs", "shock events", "repair bugs", "audit-induced")
	stats.MustAddRow(est.Stats.VisibleFaults, est.Stats.LatentFaults, est.Stats.Detections,
		est.Stats.Repairs, est.Stats.ShockEvents, est.Stats.RepairBugs, est.Stats.AuditInduced)
	return stats.Render(out)
}
