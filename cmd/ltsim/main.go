// Command ltsim runs the event-driven Monte Carlo simulator on a
// replicated-storage configuration and reports MTTDL (with confidence
// interval), mission loss probability, the empirical Figure-2 double-fault
// matrix, and the analytic model's prediction for the same system.
//
// Examples:
//
//	ltsim                                  # the paper's scrubbed mirror
//	ltsim -scrubs-per-year 0 -trials 5000  # the 32-year no-scrub scenario
//	ltsim -alpha 0.1 -replicas 3 -horizon 50
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
)

func main() {
	var (
		mv      = flag.Float64("mv", model.PaperMV, "per-replica mean time to visible fault, hours")
		ml      = flag.Float64("ml", model.PaperML, "per-replica mean time to latent fault, hours (inf = none)")
		mrv     = flag.Float64("mrv", model.PaperMRV, "visible repair time, hours")
		mrl     = flag.Float64("mrl", model.PaperMRL, "latent repair time, hours")
		scrubs  = flag.Float64("scrubs-per-year", 3, "periodic audit frequency (0 = never)")
		alpha   = flag.Float64("alpha", 1, "correlation factor in (0,1]")
		reps    = flag.Int("replicas", 2, "replica count")
		trials  = flag.Int("trials", 1000, "Monte Carlo trials")
		horizon = flag.Float64("horizon", 0, "censoring horizon in years (0 = run every trial to loss)")
		seed    = flag.Uint64("seed", 1, "random seed")
		bug     = flag.Float64("repair-bug", 0, "probability a repair plants a latent fault (§6.6)")
		wear    = flag.Float64("audit-wear", 0, "probability an audit pass plants a latent fault (§6.6)")
	)
	flag.Parse()

	if err := run(config{
		mv: *mv, ml: *ml, mrv: *mrv, mrl: *mrl,
		scrubs: *scrubs, alpha: *alpha, replicas: *reps,
		trials: *trials, horizonYears: *horizon, seed: *seed,
		bug: *bug, wear: *wear,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ltsim:", err)
		os.Exit(1)
	}
}

type config struct {
	mv, ml, mrv, mrl float64
	scrubs, alpha    float64
	replicas, trials int
	horizonYears     float64
	seed             uint64
	bug, wear        float64
}

func run(c config) error {
	rep, err := repair.Automated(c.mrv, c.mrl, c.bug)
	if err != nil {
		return err
	}
	var strat scrub.Strategy = scrub.None{}
	if c.scrubs > 0 {
		p, err := scrub.NewPeriodic(c.scrubs, 0)
		if err != nil {
			return err
		}
		strat = p
	}
	var corr faults.Correlation = faults.Independent{}
	if c.alpha < 1 {
		a, err := faults.NewAlphaCorrelation(c.alpha)
		if err != nil {
			return err
		}
		corr = a
	}
	cfg := sim.Config{
		Replicas:             c.replicas,
		VisibleMean:          c.mv,
		LatentMean:           c.ml,
		Scrub:                strat,
		Repair:               rep,
		Correlation:          corr,
		AuditLatentFaultProb: c.wear,
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return err
	}
	est, err := runner.Estimate(sim.Options{
		Trials:  c.trials,
		Seed:    c.seed,
		Horizon: model.YearsToHours(c.horizonYears),
	})
	if err != nil {
		return err
	}

	out := os.Stdout
	tbl := report.NewTable(fmt.Sprintf("Monte Carlo estimate (%d trials, %d censored)", est.Trials, est.Censored),
		"quantity", "point", "95% CI low", "95% CI high")
	tbl.MustAddRow("MTTDL (years)",
		model.Years(est.MTTDL.Point), model.Years(est.MTTDL.Lo), model.Years(est.MTTDL.Hi))
	if c.horizonYears > 0 {
		tbl.MustAddRow(fmt.Sprintf("P(loss in %.0fy)", c.horizonYears),
			est.LossProb.Point, est.LossProb.Lo, est.LossProb.Hi)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	params := cfg.ModelParams()
	cmp := report.NewTable("Analytic model for the same system",
		"quantity", "value")
	cmp.MustAddRow("clamped eq 7 MTTDL (years)", model.Years(params.MTTDL()))
	cmp.MustAddRow("eq 7 / replica-count convention (years)", model.Years(params.MTTDL()/float64(c.replicas)))
	regimeVal, regime := params.Approximation()
	cmp.MustAddRow("regime", regime.String())
	cmp.MustAddRow("regime approximation (years)", model.Years(regimeVal))
	if err := cmp.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	mtx := report.NewTable("Empirical double-fault matrix (Figure 2)",
		"first fault", "second fault", "losses", "P(loss | window)")
	for _, first := range []faults.Type{faults.Visible, faults.Latent} {
		for _, second := range []faults.Type{faults.Visible, faults.Latent} {
			p := est.Matrix.ConditionalLossProb(first, second)
			if math.IsNaN(p) {
				continue
			}
			mtx.MustAddRow(first.String(), second.String(), est.Matrix.Losses[first][second], p)
		}
	}
	if err := mtx.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	stats := report.NewTable("Event counts across all trials",
		"visible faults", "latent faults", "detections", "repairs", "shock events", "repair bugs", "audit-induced")
	stats.MustAddRow(est.Stats.VisibleFaults, est.Stats.LatentFaults, est.Stats.Detections,
		est.Stats.Repairs, est.Stats.ShockEvents, est.Stats.RepairBugs, est.Stats.AuditInduced)
	return stats.Render(out)
}
