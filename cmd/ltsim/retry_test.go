package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestPostWithRetryRecovers: a server that sheds the first attempts with
// 503 is retried until it answers, and the winning response flows back.
func TestPostWithRetryRecovers(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "queue full", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()

	resp, err := postWithRetry(ts.URL, []byte(`{}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after retries", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two shed, one served)", got)
	}
}

// TestPostWithRetryExhausted: when every attempt is shed the final 503
// response is handed back (not swallowed into a bare error), and the
// attempt count honors the bound.
func TestPostWithRetryExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "queue full", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	resp, err := postWithRetry(ts.URL, []byte(`{}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the final 503 surfaced", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestPostWithRetryNoRetryOn4xx: client errors return immediately — a
// retry can never fix a bad request.
func TestPostWithRetryNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad alpha", http.StatusBadRequest)
	}))
	defer ts.Close()

	resp, err := postWithRetry(ts.URL, []byte(`{}`), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 passed through", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
}

// TestPostWithRetryConnectionRefused: a dead address exhausts the bound
// and reports the transport error.
func TestPostWithRetryConnectionRefused(t *testing.T) {
	if _, err := postWithRetry("http://127.0.0.1:1/estimate", []byte(`{}`), 1); err == nil {
		t.Fatal("expected a connection error from a dead port")
	}
}
