// Command ltexp regenerates the paper's figures and numeric analyses:
// every experiment registered in internal/experiments (DESIGN.md §3),
// rendered as text tables, ASCII plots, and paper-vs-measured notes.
//
// Examples:
//
//	ltexp              # run everything (used to produce EXPERIMENTS.md)
//	ltexp -id E2       # one experiment
//	ltexp -quick       # reduced Monte Carlo budgets
//	ltexp -list        # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		id    = flag.String("id", "", "run a single experiment by ID (e.g. E2)")
		quick = flag.Bool("quick", false, "reduced Monte Carlo budgets")
		seed  = flag.Uint64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-14s %s\n", e.ID, e.Source, e.Title)
		}
		return
	}

	todo := experiments.All()
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ltexp: unknown experiment %q (use -list)\n", *id)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick}
	failed := 0
	for _, e := range todo {
		if err := runOne(e, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ltexp: %s: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func runOne(e experiments.Experiment, cfg experiments.RunConfig) error {
	fmt.Printf("================================================================\n")
	fmt.Printf("%s — %s (%s)\n", e.ID, e.Title, e.Source)
	fmt.Printf("================================================================\n\n")
	res, err := e.Run(cfg)
	if err != nil {
		return err
	}
	for _, tbl := range res.Tables {
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	for _, p := range res.Plots {
		if err := p.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	for _, n := range res.Notes {
		fmt.Printf("note: %s\n", n)
	}
	fmt.Println()
	return nil
}
