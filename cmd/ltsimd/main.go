// Command ltsimd serves the Monte Carlo reliability estimator as a
// long-running daemon: canonical request hashing, a content-addressed
// LRU result cache, and a sharded worker pool, so repeat what-if queries
// cost a cache lookup instead of a full simulation.
//
//	ltsimd -addr :8356
//	curl -s localhost:8356/healthz
//	curl -s -X POST localhost:8356/estimate -d '{"alpha":0.1,"trials":2000}'
//	curl -s -X POST localhost:8356/sweep -d '{"requests":[{"replicas":2},{"replicas":3}]}'
//	curl -s localhost:8356/experiments
//	curl -s -X POST 'localhost:8356/experiments/run?id=E2&quick=1'
//	curl -s localhost:8356/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, then
// queued and in-flight jobs drain (up to -drain), then workers stop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8356", "listen address")
		cacheSize  = flag.Int("cache", 1024, "result cache capacity, entries")
		shards     = flag.Int("shards", 0, "scheduler shards (0 = min(4, GOMAXPROCS))")
		queueDepth = flag.Int("queue", 64, "job queue depth per shard")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "per-job simulation timeout")
		parallel   = flag.Int("sim-parallel", 0, "simulator workers per job (0 = GOMAXPROCS/shards)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain budget for queued and in-flight jobs")
		targetRel  = flag.Float64("target-rel", 0, "server-wide adaptive default: requests with no trial budget and no target of their own stop at this relative CI half-width (0 = off)")
		maxTrials  = flag.Int("max-trials", 0, "clamp every request's trial budget, fixed or adaptive (0 = no cap)")
	)
	flag.Parse()

	if err := run(*addr, *drain, service.Config{
		CacheSize:        *cacheSize,
		Shards:           *shards,
		QueueDepth:       *queueDepth,
		JobTimeout:       *jobTimeout,
		SimParallel:      *parallel,
		DefaultTargetRel: *targetRel,
		MaxTrialsCap:     *maxTrials,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ltsimd:", err)
		os.Exit(1)
	}
}

func run(addr string, drain time.Duration, cfg service.Config) error {
	svc := service.New(cfg)
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ltsimd: listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("ltsimd: shutting down, draining jobs (budget %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ltsimd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		log.Printf("ltsimd: drain budget exhausted, in-flight jobs aborted: %v", err)
	} else {
		log.Printf("ltsimd: drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
