// Command ltsimd serves the Monte Carlo reliability estimator as a
// long-running daemon: canonical request hashing, a content-addressed
// LRU result cache, and a sharded worker pool, so repeat what-if queries
// cost a cache lookup instead of a full simulation. With -cache-dir a
// persistent content-addressed store (internal/store) sits under the
// memory cache: results survive restarts and a warm daemon replays
// bit-identical bytes from disk (X-Ltsimd-Cache: disk).
//
//	ltsimd -addr :8356 -cache-dir /var/cache/ltsimd
//	curl -s localhost:8356/healthz
//	curl -s -X POST localhost:8356/estimate -d '{"alpha":0.1,"trials":2000}'
//	curl -s -X POST localhost:8356/estimate \
//	  -d '{"hazard":{"kind":"weibull","shape":2,"scale_hours":50000},"horizon_years":10}'
//	curl -s -X POST localhost:8356/sweep -d '{"requests":[{"replicas":2},{"replicas":3}]}'
//	curl -s localhost:8356/experiments
//	curl -s -X POST 'localhost:8356/experiments/run?id=E2&quick=1'
//	curl -s localhost:8356/stats
//	curl -s localhost:8356/metrics
//
// Observability: the daemon logs one NDJSON record per request to
// stderr (request ID, route, status, cache outcome, span timeline;
// -log-level tunes verbosity), exposes Prometheus metrics on
// GET /metrics, and — with -debug-addr — serves net/http/pprof on a
// separate listener so profiling never rides the public surface.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, then
// queued and in-flight jobs drain (up to -drain), then workers stop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8356", "listen address")
		cacheSize  = flag.Int("cache", 1024, "result cache capacity, entries")
		shards     = flag.Int("shards", 0, "scheduler shards (0 = min(4, GOMAXPROCS))")
		queueDepth = flag.Int("queue", 64, "job queue depth per shard")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "per-job simulation timeout")
		parallel   = flag.Int("sim-parallel", 0, "simulator workers per job (0 = GOMAXPROCS/shards)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain budget for queued and in-flight jobs")
		targetRel  = flag.Float64("target-rel", 0, "server-wide adaptive default: requests with no trial budget and no target of their own stop at this relative CI half-width (0 = off)")
		maxTrials  = flag.Int("max-trials", 0, "clamp every request's trial budget, fixed or adaptive (0 = no cap)")
		biasMode   = flag.String("bias", "off", "server-wide rare-event default: horizon-censored requests that don't choose a bias mode run importance-sampled — auto (model-chosen boost) or an explicit factor >= 1 (off = plain Monte Carlo)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error (healthz/metrics traffic logs at debug)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled; never exposed on -addr)")
		cacheDir   = flag.String("cache-dir", "", "persistent result-store directory layered under the in-memory cache (empty = memory only); a warm dir survives restarts and replays bit-identical bytes")
		cacheDisk  = flag.Int64("cache-disk-bytes", 1<<30, "disk-store GC bound in file bytes (0 = unbounded); least-recently-used entries are deleted over this")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ltsimd: -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	bias, err := parseBias(*biasMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltsimd:", err)
		os.Exit(2)
	}

	var diskStore store.Store
	if *cacheDir != "" {
		ds, err := store.OpenDisk(*cacheDir, *cacheDisk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltsimd:", err)
			os.Exit(2)
		}
		logger.Info("disk store open", "dir", *cacheDir, "entries", ds.Len(), "max_bytes", *cacheDisk)
		diskStore = ds
	}

	if err := run(*addr, *debugAddr, *drain, logger, service.Config{
		CacheSize:        *cacheSize,
		Shards:           *shards,
		QueueDepth:       *queueDepth,
		JobTimeout:       *jobTimeout,
		SimParallel:      *parallel,
		DefaultTargetRel: *targetRel,
		MaxTrialsCap:     *maxTrials,
		DefaultBias:      bias,
		Logger:           logger,
		Store:            diskStore,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ltsimd:", err)
		os.Exit(1)
	}
}

// parseBias maps the -bias policy flag onto service.Config.DefaultBias:
// 0 off, sim.AutoBias for the model-chosen factor, an explicit β >= 1
// otherwise.
func parseBias(v string) (float64, error) {
	switch v {
	case "", "off":
		return 0, nil
	case "auto":
		return sim.AutoBias, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 1 {
		return 0, fmt.Errorf("-bias %q must be off, auto, or a factor >= 1", v)
	}
	return f, nil
}

// debugMux returns a mux serving only the pprof surface. Handlers are
// registered explicitly rather than through net/http/pprof's
// DefaultServeMux side effects, so profiling exists only on the debug
// listener and the public mux stays clean.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr, debugAddr string, drain time.Duration, logger *slog.Logger, cfg service.Config) error {
	svc := service.New(cfg)
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr)
		errc <- srv.ListenAndServe()
	}()

	var dbgSrv *http.Server
	if debugAddr != "" {
		dbgSrv = &http.Server{Addr: debugAddr, Handler: debugMux()}
		go func() {
			logger.Info("pprof listening", "addr", debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", debugAddr, "err", err.Error())
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining jobs", "drain", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if dbgSrv != nil {
		dbgSrv.Shutdown(shutdownCtx)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain budget exhausted, in-flight jobs aborted", "err", err.Error())
	} else {
		logger.Info("drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
